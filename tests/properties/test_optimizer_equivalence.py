"""Byte-identity of the cost-based optimizer against the unoptimized executor.

Physical planning is advisory: for any query and any combination of
statistics, indexes and strategy toggles, results must equal the
``optimizer=False`` engine's — same rows, same order, same dtypes.  The
matrix below runs every query under every engine variant and compares
the full row list plus the per-column numpy dtypes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import PlannerOptions, QueryEngine
from repro.table import Table

QUERIES = [
    "SELECT * FROM blocks WHERE height > 12",
    "SELECT producer FROM blocks WHERE producer = 'p1'",
    "SELECT height, reward FROM blocks WHERE height BETWEEN 5 AND 25",
    "SELECT producer, COUNT(*) AS n FROM blocks WHERE height < 30 "
    "GROUP BY producer HAVING n > 1 ORDER BY n DESC, producer LIMIT 4",
    "SELECT b.height, p.region FROM blocks b JOIN pools p "
    "ON b.producer = p.producer WHERE b.height < 20 ORDER BY b.height",
    "SELECT b.height, p.region FROM blocks b LEFT JOIN pools p "
    "ON b.producer = p.producer ORDER BY b.height",
    "SELECT DISTINCT producer FROM blocks WHERE reward >= 2 ORDER BY producer",
    "SELECT d.producer, d.n FROM (SELECT producer, COUNT(*) AS n "
    "FROM blocks GROUP BY producer) d WHERE d.n > 3 ORDER BY d.producer",
    "SELECT height FROM blocks WHERE height = 7 OR producer = 'p2' ORDER BY height",
]


def catalog() -> dict[str, Table]:
    n = 40
    return {
        "blocks": Table(
            {
                "height": list(range(n)),
                "producer": [f"p{i % 5}" for i in range(n)],
                "reward": [float(i % 7) for i in range(n)],
            }
        ),
        # p4 is missing so joins exercise non-matching keys / LEFT NULLs.
        "pools": Table(
            {"producer": ["p0", "p1", "p2", "p3"], "region": ["w", "x", "y", "z"]}
        ),
    }


def variant_engines() -> list[tuple[str, QueryEngine]]:
    engines: list[tuple[str, QueryEngine]] = []

    def add(name: str, analyze: bool = True, indexed: bool = True, **kwargs):
        eng = QueryEngine(catalog(), **kwargs)
        if indexed:
            eng.create_index("blocks", "height", "sorted")
            eng.create_index("blocks", "producer", "hash")
            eng.create_index("pools", "producer", "hash")
        if analyze:
            eng.execute("ANALYZE")
        engines.append((name, eng))

    add("no-stats-no-index", analyze=False, indexed=False)
    add("stats-only", indexed=False)
    add("stats-and-indexes")
    add("force-sort-merge", options=PlannerOptions.with_disabled(
        ["hash-join", "index-join"]
    ))
    add("force-index-join", options=PlannerOptions.with_disabled(
        ["hash-join", "sort-merge-join"]
    ))
    add("no-pushdown", options=PlannerOptions.with_disabled(
        ["predicate-pushdown", "projection-pushdown"]
    ))
    add("no-index-scan", options=PlannerOptions.with_disabled(["index-scan"]))
    return engines


def snapshot(table: Table):
    return (
        table.column_names,
        tuple(str(np.asarray(table[c]).dtype) for c in table.column_names),
        table.to_rows(),
    )


class TestOptimizerEquivalence:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_matrix_is_byte_identical(self, sql):
        baseline_engine = QueryEngine(catalog(), optimizer=False)
        baseline = snapshot(baseline_engine.execute(sql))
        for name, engine in variant_engines():
            got = snapshot(engine.execute(sql))
            assert got == baseline, f"variant {name!r} diverged on {sql!r}"

    @pytest.mark.parametrize("sql", QUERIES)
    def test_explain_analyze_matches_execute(self, sql):
        engine = QueryEngine(catalog())
        engine.create_index("blocks", "height", "sorted")
        engine.execute("ANALYZE")
        plain = snapshot(engine.execute(sql))
        traced, _ = engine.explain_analyze(sql)
        assert snapshot(traced) == plain


@st.composite
def random_tables(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    producers = draw(
        st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=n, max_size=n)
    )
    heights = draw(
        st.lists(st.integers(min_value=0, max_value=15), min_size=n, max_size=n)
    )
    return Table({"height": heights, "producer": producers})


class TestOptimizerEquivalenceProperties:
    @given(random_tables(), st.integers(min_value=-1, max_value=16))
    @settings(max_examples=40)
    def test_equality_filter_identical(self, table, pivot):
        sql = f"SELECT producer FROM t WHERE height = {pivot}"
        baseline = QueryEngine({"t": table}, optimizer=False).execute(sql)
        optimized = QueryEngine({"t": table})
        optimized.create_index("t", "height", "sorted")
        optimized.execute("ANALYZE")
        assert snapshot(optimized.execute(sql)) == snapshot(baseline)

    @given(random_tables(), random_tables())
    @settings(max_examples=25)
    def test_join_strategies_identical(self, left, right):
        sql = (
            "SELECT l.height, r.height AS rh FROM l JOIN r "
            "ON l.producer = r.producer"
        )
        baseline = snapshot(QueryEngine(
            {"l": left, "r": right}, optimizer=False
        ).execute(sql))
        for disabled in (
            [],
            ["hash-join", "index-join"],
            ["hash-join", "sort-merge-join"],
        ):
            engine = QueryEngine(
                {"l": left, "r": right},
                options=PlannerOptions.with_disabled(disabled),
            )
            engine.create_index("r", "producer", "hash")
            engine.execute("ANALYZE")
            assert snapshot(engine.execute(sql)) == baseline, disabled
