"""Time-based sliding windows.

The paper slides over *block counts*; an alternative (and for cross-chain
comparison sometimes preferable) formulation slides a wall-clock window
over timestamps — e.g. a 24-hour window stepping 12 hours.  Block-count
windows always contain exactly N blocks but cover varying time spans;
time windows cover exactly the configured duration but contain varying
block counts.  Both are supported by the measurement engine; the ablation
benches compare them.
"""

from __future__ import annotations

from repro.errors import WindowError
from repro.util.timeutils import YEAR_2019_END, YEAR_2019_START
from repro.windows.base import TimeWindow


class SlidingTimeWindows:
    """Sliding wall-clock windows of ``duration`` seconds stepping ``step``.

    Defaults cover calendar year 2019 (the paper's measurement span);
    ``step`` defaults to half the duration, mirroring the paper's M = N/2.
    """

    def __init__(
        self,
        duration: int,
        step: int | None = None,
        start_ts: int = YEAR_2019_START,
        end_ts: int = YEAR_2019_END,
    ) -> None:
        if duration <= 0:
            raise WindowError(f"duration must be positive, got {duration}")
        if step is None:
            step = max(duration // 2, 1)
        if step <= 0:
            raise WindowError(f"step must be positive, got {step}")
        if step > duration:
            raise WindowError(
                f"step ({step}) larger than duration ({duration}) would skip time"
            )
        if end_ts <= start_ts:
            raise WindowError("end_ts must exceed start_ts")
        self.duration = duration
        self.step = step
        self.start_ts = start_ts
        self.end_ts = end_ts

    @property
    def overlap(self) -> int:
        """Seconds shared by consecutive windows."""
        return self.duration - self.step

    def expected_count(self) -> int:
        """Eq. 5 in the time domain: ``(span - duration) // step + 1``."""
        span = self.end_ts - self.start_ts
        if span < self.duration:
            return 0
        return (span - self.duration) // self.step + 1

    def generate(self) -> list[TimeWindow]:
        """All windows over the configured span, in chronological order."""
        windows = []
        for i in range(self.expected_count()):
            start = self.start_ts + i * self.step
            windows.append(
                TimeWindow(
                    index=i,
                    label=f"ts[{start}:{start + self.duration}]",
                    start_ts=start,
                    end_ts=start + self.duration,
                )
            )
        return windows

    def __repr__(self) -> str:
        return f"SlidingTimeWindows(duration={self.duration}, step={self.step})"
