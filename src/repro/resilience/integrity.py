"""Chain integrity validation, quarantine and repair.

Ingested block pages can arrive truncated, duplicated, reordered or
malformed (see :mod:`repro.resilience.faults` for the taxonomy).  This
module turns a suspect pile of raw block rows back into a valid chain:

1. :func:`validate_blocks` detects every issue — height gaps, duplicate
   heights, out-of-range/corrupted heights, timestamp regressions, empty
   coinbase lists — as typed :class:`IntegrityIssue` records.
2. :func:`repair_blocks` quarantines bad rows and repairs per policy:
   ``refetch`` pulls the true row from the source of truth (recovery is
   then byte-identical to a clean ingest), ``interpolate`` synthesizes a
   plausible row from neighbours, ``drop`` simply omits it.
3. The outcome is stamped as a :class:`DataQualityReport` — attached to
   measurement series (``MeasurementSeries.quality``) and surfaced by
   ``/status`` — so no result can silently claim clean data.

Raw rows are :class:`RawBlock` — deliberately unvalidated, unlike
:class:`repro.chain.block.Block`, because holding pre-repair data is the
whole point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.chain.chain import Chain
from repro.chain.specs import ChainSpec
from repro.errors import IntegrityError, ValidationError

#: Issue kinds reported by :func:`validate_blocks`.
ISSUE_KINDS: tuple[str, ...] = (
    "height_gap",
    "duplicate_height",
    "height_out_of_range",
    "timestamp_regression",
    "empty_producers",
)

#: Repair policies accepted by :func:`repair_blocks`.
REPAIR_POLICIES: tuple[str, ...] = ("refetch", "interpolate", "drop")


@dataclass(frozen=True)
class RawBlock:
    """One unvalidated ingested block row (height, timestamp, producers)."""

    height: int
    timestamp: int
    producers: tuple[str, ...]


@dataclass(frozen=True)
class IntegrityIssue:
    """One detected violation, anchored to a height where meaningful."""

    kind: str
    height: int | None
    detail: str

    def __str__(self) -> str:
        at = f" at height {self.height}" if self.height is not None else ""
        return f"{self.kind}{at}: {self.detail}"


@dataclass
class DataQualityReport:
    """What validation found and what repair did about it.

    ``clean`` is True only when nothing was detected — a report stamped
    on a measurement series makes data-quality state part of the result.
    """

    n_blocks: int = 0
    issues: list[IntegrityIssue] = field(default_factory=list)
    quarantined: int = 0
    refetched: int = 0
    interpolated: int = 0
    dropped: int = 0
    deduplicated: int = 0
    reordered: int = 0

    @property
    def clean(self) -> bool:
        """True when validation found nothing to repair."""
        return not self.issues and not self.reordered

    def issue_counts(self) -> dict[str, int]:
        """Number of detected issues per kind."""
        counts: dict[str, int] = {}
        for issue in self.issues:
            counts[issue.kind] = counts.get(issue.kind, 0) + 1
        return counts

    def as_dict(self) -> dict:
        """JSON-ready summary (the shape stamped onto series and /status)."""
        return {
            "n_blocks": self.n_blocks,
            "clean": self.clean,
            "issues": self.issue_counts(),
            "quarantined": self.quarantined,
            "refetched": self.refetched,
            "interpolated": self.interpolated,
            "dropped": self.dropped,
            "deduplicated": self.deduplicated,
            "reordered": self.reordered,
        }


def raw_blocks(chain: Chain, start: int = 0, stop: int | None = None) -> list[RawBlock]:
    """Materialize chain positions ``[start, stop)`` as raw rows."""
    stop = chain.n_blocks if stop is None else min(stop, chain.n_blocks)
    heights, timestamps = chain.heights, chain.timestamps
    offsets, ids, names = chain.offsets, chain.producer_ids, chain.producer_names
    return [
        RawBlock(
            int(heights[i]),
            int(timestamps[i]),
            tuple(names[pid] for pid in ids[offsets[i]:offsets[i + 1]]),
        )
        for i in range(start, stop)
    ]


def validate_blocks(
    blocks: Sequence[RawBlock],
    expected_heights: range | None = None,
) -> list[IntegrityIssue]:
    """Detect every integrity violation in ``blocks``.

    With ``expected_heights`` (the contract of the extract: which heights
    must be present exactly once) gaps and out-of-range heights are
    reported precisely; without it only order-derived issues are visible.
    """
    issues: list[IntegrityIssue] = []
    seen: set[int] = set()
    valid_range = (
        (expected_heights.start, expected_heights.stop)
        if expected_heights is not None
        else None
    )
    for block in blocks:
        if not block.producers or any(not p for p in block.producers):
            issues.append(
                IntegrityIssue(
                    "empty_producers",
                    block.height if block.height > 0 else None,
                    "block has no usable coinbase address",
                )
            )
        height_ok = block.height > 0 and (
            valid_range is None or valid_range[0] <= block.height < valid_range[1]
        )
        if not height_ok:
            issues.append(
                IntegrityIssue(
                    "height_out_of_range",
                    None,
                    f"height {block.height} outside the expected extract",
                )
            )
            continue
        if block.height in seen:
            issues.append(
                IntegrityIssue(
                    "duplicate_height",
                    block.height,
                    "height delivered more than once",
                )
            )
        seen.add(block.height)
    if expected_heights is not None:
        for height in expected_heights:
            if height not in seen:
                issues.append(
                    IntegrityIssue(
                        "height_gap", height, "expected height never delivered"
                    )
                )
    # Timestamp monotonicity is checked in height order over usable rows.
    usable = sorted(
        (b for b in blocks if b.height in seen and b.producers),
        key=lambda b: b.height,
    )
    previous: RawBlock | None = None
    for block in usable:
        if previous is not None and block.height != previous.height:
            if block.timestamp < previous.timestamp:
                issues.append(
                    IntegrityIssue(
                        "timestamp_regression",
                        block.height,
                        f"timestamp {block.timestamp} regresses below "
                        f"{previous.timestamp}",
                    )
                )
        previous = block
    return issues


def repair_blocks(
    blocks: Sequence[RawBlock],
    expected_heights: range,
    *,
    policy: str = "refetch",
    refetch: Callable[[int], RawBlock] | None = None,
) -> tuple[list[RawBlock], DataQualityReport]:
    """Quarantine bad rows and rebuild the expected contiguous extract.

    Returns the repaired rows (sorted by height, one per expected height
    under ``refetch``/``interpolate``; possibly fewer under ``drop``) and
    the :class:`DataQualityReport` describing what happened.

    ``refetch`` must be provided for the refetch policy — it is also used
    to recover rows whose *content* (not just presence) was corrupted.
    ``interpolate`` synthesizes a gap row from its nearest repaired
    neighbour (its producers, a clamped timestamp); ``drop`` omits it.
    """
    if policy not in REPAIR_POLICIES:
        raise ValidationError(
            f"unknown repair policy {policy!r}; expected one of {REPAIR_POLICIES}"
        )
    if policy == "refetch" and refetch is None:
        raise ValidationError("the 'refetch' repair policy needs a refetch callable")
    report = DataQualityReport(n_blocks=len(expected_heights))
    report.issues = validate_blocks(blocks, expected_heights)
    with obs.span(
        "integrity.repair", policy=policy, n_issues=len(report.issues)
    ):
        by_height: dict[int, RawBlock] = {}
        order_heights: list[int] = []
        for block in blocks:
            usable = (
                block.height in expected_heights
                and block.producers
                and all(block.producers)
            )
            if not usable:
                report.quarantined += 1
                continue
            if block.height in by_height:
                report.deduplicated += 1
                continue
            by_height[block.height] = block
            order_heights.append(block.height)
        if order_heights != sorted(order_heights):
            report.reordered += 1

        # A corrupted-in-place timestamp flags itself against its
        # neighbours: a row that regresses below its predecessor or rises
        # above its successor cannot be trusted, so it is recovered like a
        # missing row.  (Both sides of a jump are flagged; under refetch
        # that is merely a second exact read.)
        present = sorted(by_height)
        suspects: set[int] = set()
        for j, height in enumerate(present):
            ts = by_height[height].timestamp
            if j > 0 and ts < by_height[present[j - 1]].timestamp:
                suspects.add(height)
            if j + 1 < len(present) and ts > by_height[present[j + 1]].timestamp:
                suspects.add(height)

        repaired: list[RawBlock] = []
        previous: RawBlock | None = None
        for height in expected_heights:
            block = by_height.get(height)
            if block is None or height in suspects:
                block = _recover(height, previous, policy, refetch, report)
                if block is None:
                    continue
            repaired.append(block)
            previous = block
    registry = obs.get_tracer().metrics
    registry.counter("resilience.integrity.issues_total").inc(len(report.issues))
    if not report.clean:
        registry.counter("resilience.integrity.repairs_total").inc()
    return repaired, report


def _recover(
    height: int,
    previous: RawBlock | None,
    policy: str,
    refetch: Callable[[int], RawBlock] | None,
    report: DataQualityReport,
) -> RawBlock | None:
    if policy == "refetch":
        assert refetch is not None
        block = refetch(height)
        report.refetched += 1
        return block
    if policy == "interpolate":
        if previous is None:
            report.dropped += 1
            return None
        report.interpolated += 1
        return RawBlock(height, previous.timestamp, previous.producers)
    report.dropped += 1
    return None


def chain_from_raw_blocks(
    spec: ChainSpec, blocks: Sequence[RawBlock], validate: bool = True
) -> Chain:
    """Assemble validated columnar storage from repaired raw rows.

    Producer names are interned in first-appearance order — the same
    order a clean ingest produces — so a faulted-then-repaired fetch
    yields arrays identical to the clean fetch.  Invalid rows raise
    :class:`~repro.errors.IntegrityError` (repair should have removed
    them).  Pass ``validate=False`` for chains the ``drop`` repair policy
    left with height gaps.
    """
    heights = np.asarray([b.height for b in blocks], dtype=np.int64)
    timestamps = np.asarray([b.timestamp for b in blocks], dtype=np.int64)
    name_to_id: dict[str, int] = {}
    producer_ids: list[int] = []
    offsets = np.zeros(len(blocks) + 1, dtype=np.int64)
    for i, block in enumerate(blocks):
        if not block.producers:
            raise IntegrityError(
                f"block {block.height} reached assembly with no producers"
            )
        for producer in block.producers:
            pid = name_to_id.get(producer)
            if pid is None:
                pid = len(name_to_id)
                name_to_id[producer] = pid
            producer_ids.append(pid)
        offsets[i + 1] = len(producer_ids)
    names = [""] * len(name_to_id)
    for name, pid in name_to_id.items():
        names[pid] = name
    return Chain(
        spec,
        heights,
        timestamps,
        offsets,
        np.asarray(producer_ids, dtype=np.int64),
        names,
        validate=validate,
    )
