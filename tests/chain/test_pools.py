"""Tests for the pool registry and 2019 snapshots."""

import pytest

from repro.chain.pools import PoolInfo, PoolRegistry, bitcoin_pools_2019, ethereum_pools_2019
from repro.errors import ValidationError


class TestPoolInfo:
    def test_share_interpolation(self):
        pool = PoolInfo("P", "addr", 0.10, 0.20)
        assert pool.share_on_day(0) == pytest.approx(0.10)
        assert pool.share_on_day(364) == pytest.approx(0.20)
        assert pool.share_on_day(182) == pytest.approx(0.15, abs=0.001)

    def test_invalid_share_rejected(self):
        with pytest.raises(ValidationError):
            PoolInfo("P", "addr", 1.5, 0.2)


class TestPoolRegistry:
    def test_pool_of_known_address(self):
        registry = PoolRegistry([PoolInfo("P", "addr", 0.1, 0.1)])
        assert registry.pool_of("addr") == "P"

    def test_pool_of_unknown_passes_through(self):
        registry = PoolRegistry()
        assert registry.pool_of("solo-miner") == "solo-miner"

    def test_contains_and_len(self):
        registry = PoolRegistry([PoolInfo("P", "addr", 0.1, 0.1)])
        assert "addr" in registry
        assert len(registry) == 1
        assert registry.is_pool_address("addr")

    def test_duplicate_address_rejected(self):
        registry = PoolRegistry([PoolInfo("P", "addr", 0.1, 0.1)])
        with pytest.raises(ValidationError):
            registry.register(PoolInfo("Q", "addr", 0.1, 0.1))

    def test_as_mapping_is_copy(self):
        registry = PoolRegistry([PoolInfo("P", "addr", 0.1, 0.1)])
        mapping = registry.as_mapping()
        assert mapping == {"addr": "P"}


class TestBitcoin2019Snapshot:
    def test_has_major_pools(self):
        names = {p.name for p in bitcoin_pools_2019().pools}
        for expected in ("BTC.com", "F2Pool", "Poolin", "AntPool", "SlushPool"):
            assert expected in names

    def test_shares_sum_below_one(self):
        """The residual is the long tail of unknown miners."""
        pools = bitcoin_pools_2019().pools
        assert 0.85 < sum(p.share_early for p in pools) < 1.0
        assert 0.85 < sum(p.share_late for p in pools) < 1.0

    def test_top4_crosses_majority_midyear(self):
        """The calibration behind the paper's stable Nakamoto = 4 window."""
        pools = bitcoin_pools_2019().pools
        mid_shares = sorted((p.share_on_day(180) for p in pools), reverse=True)
        assert sum(mid_shares[:4]) > 0.50
        assert sum(mid_shares[:3]) < 0.51


class TestEthereum2019Snapshot:
    def test_top_two_near_but_below_majority(self):
        """Ethermine + SparkPool hover just below 51% -> Nakamoto 2-3."""
        pools = ethereum_pools_2019().pools
        for day in (0, 180, 364):
            shares = sorted((p.share_on_day(day) for p in pools), reverse=True)
            assert 0.42 < shares[0] + shares[1] < 0.53

    def test_distinct_addresses(self):
        pools = ethereum_pools_2019().pools
        addresses = [p.address for p in pools]
        assert len(addresses) == len(set(addresses))
