"""Data collection, BigQuery style.

The paper collected its datasets with SQL over Google BigQuery's public
blockchain tables.  This example runs the equivalent queries against the
simulated chain using the in-repo SQL engine: dataset bounds, per-producer
block counts, daily producer populations, and the hunt for the anomalous
multi-coinbase blocks of §II-C1d.

Run with::

    python examples/bigquery_style_sql.py
"""

from repro import simulate_bitcoin_2019
from repro.sql import QueryEngine


def main() -> None:
    chain = simulate_bitcoin_2019(seed=2019)
    engine = QueryEngine(
        {
            "credits": chain.to_table(),      # one row per (block, producer)
            "blocks": chain.block_table(),    # one row per block
        }
    )

    print("-- dataset bounds (paper §II-A)")
    for row in engine.execute(
        "SELECT COUNT(*) AS n_blocks, MIN(height) AS first, MAX(height) AS last "
        "FROM blocks"
    ).to_rows():
        print(row)

    print("\n-- top 10 producers of 2019")
    rows = engine.execute(
        "SELECT producer, COUNT(*) AS blocks_mined "
        "FROM credits GROUP BY producer ORDER BY blocks_mined DESC LIMIT 10"
    )
    for row in rows.to_rows():
        print(f"  {row['producer']:<40s} {row['blocks_mined']:>6d}")

    print("\n-- blocks with many coinbase payout addresses (the paper's anomaly)")
    rows = engine.execute(
        "SELECT height, n_producers FROM blocks "
        "WHERE n_producers >= 50 ORDER BY n_producers DESC"
    )
    for row in rows.to_rows():
        print(f"  block {row['height']}: {row['n_producers']} producers")

    print("\n-- how many distinct producers mined each month")
    rows = engine.execute(
        "SELECT (timestamp - 1546300800) / 2678400 AS month_ish, "
        "       COUNT(DISTINCT producer) AS producers "
        "FROM credits GROUP BY (timestamp - 1546300800) / 2678400 "
        "ORDER BY 1 LIMIT 12"
    )
    for row in rows.to_rows():
        print(f"  ~month {int(row['month_ish']):>2d}: {row['producers']} producers")

    print("\n-- producer tiers (via a derived table, BigQuery style)")
    rows = engine.execute(
        "SELECT CASE WHEN blocks_mined = 1 THEN 'one-block' "
        "            WHEN blocks_mined < 100 THEN 'small' "
        "            ELSE 'pool-scale' END AS tier, "
        "       COUNT(*) AS producers, SUM(blocks_mined) AS blocks "
        "FROM (SELECT producer, COUNT(*) AS blocks_mined "
        "      FROM credits GROUP BY producer) per_producer "
        "GROUP BY 1 ORDER BY 3 DESC"
    )
    for row in rows.to_rows():
        print(f"  {row['tier']:<12s} producers={row['producers']:>5d} "
              f"blocks={row['blocks']:>6d}")


if __name__ == "__main__":
    main()
