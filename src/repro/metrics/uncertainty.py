"""Bootstrap uncertainty for per-window metric values (extension).

A window's Gini/entropy/Nakamoto value is a point estimate computed from a
finite sample of blocks; with 144 blocks per day the sampling noise is
material (it is why daily Nakamoto oscillates).  The block bootstrap makes
that uncertainty explicit: resample the window's blocks with replacement
(a multinomial over the observed entity shares), recompute the metric per
replicate, and report a percentile confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MetricError
from repro.metrics.base import Metric, get_metric, validate_distribution
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class BootstrapCI:
    """A percentile bootstrap confidence interval for one window."""

    metric_name: str
    estimate: float
    low: float
    high: float
    level: float
    n_boot: int

    @property
    def width(self) -> float:
        """Interval width (high - low)."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """True if ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.metric_name} = {self.estimate:.4f} "
            f"[{self.low:.4f}, {self.high:.4f}] @{self.level:.0%}"
        )


def bootstrap_ci(
    values: np.ndarray | list[float],
    metric: str | Metric,
    n_boot: int = 200,
    level: float = 0.95,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI for ``metric`` over a credit distribution.

    ``values`` are the observed per-entity credit totals of one window;
    each replicate redraws the window's total weight as a multinomial over
    the observed shares and recomputes the metric on the non-zero counts.
    """
    if n_boot < 10:
        raise MetricError(f"n_boot must be >= 10, got {n_boot}")
    if not 0.5 < level < 1.0:
        raise MetricError(f"level must be in (0.5, 1), got {level}")
    resolved = get_metric(metric) if isinstance(metric, str) else metric
    distribution = validate_distribution(values)
    estimate = float(resolved.compute(distribution))
    total = distribution.sum()
    n_draws = int(round(total))
    if n_draws < 1:
        raise MetricError("distribution total weight is below one block")
    shares = distribution / total
    rng = derive_rng(seed, f"bootstrap/{resolved.name}")
    replicates = np.empty(n_boot, dtype=np.float64)
    samples = rng.multinomial(n_draws, shares, size=n_boot)
    for i in range(n_boot):
        counts = samples[i]
        counts = counts[counts > 0]
        replicates[i] = float(resolved.compute(counts.astype(np.float64)))
    alpha = (1.0 - level) / 2.0
    low, high = np.quantile(replicates, [alpha, 1.0 - alpha])
    return BootstrapCI(
        metric_name=resolved.name,
        estimate=estimate,
        low=float(low),
        high=float(high),
        level=level,
        n_boot=n_boot,
    )
