"""Tests for multi-metric sweeps (measure_many and friends)."""

import numpy as np
import pytest

from repro.core.engine import MeasurementEngine
from repro.errors import MetricError
from repro.windows.sliding import SlidingBlockWindows


class TestMeasureManyOnCalibratedChain:
    def test_calendar_many_matches_single_metric_calls(self, btc_engine):
        metrics = ("gini", "entropy", "nakamoto")
        sweep = btc_engine.measure_calendar_many(metrics, "day")
        assert set(sweep) == set(metrics)
        for metric in metrics:
            single = btc_engine.measure_calendar(metric, "day")
            assert sweep[metric].labels == single.labels
            np.testing.assert_allclose(
                sweep[metric].values, single.values, rtol=1e-9, atol=1e-12
            )

    def test_sliding_many_matches_single_metric_calls(self, btc_engine):
        metrics = ("gini", "entropy", "nakamoto")
        sweep = btc_engine.measure_sliding_many(metrics, 144)
        for metric in metrics:
            single = btc_engine.measure_sliding(metric, 144)
            assert sweep[metric].window_desc == "sliding-144/72"
            np.testing.assert_allclose(
                sweep[metric].values, single.values, rtol=1e-12, atol=1e-12
            )

    def test_sliding_fast_path_matches_reference_loop(self, btc_engine):
        windows = SlidingBlockWindows(144, 72).generate(btc_engine.credits.n_blocks)
        for metric in ("gini", "entropy", "nakamoto"):
            reference = btc_engine.measure(metric, windows, window_desc="ref")
            fast = btc_engine.measure_sliding(metric, 144)
            assert fast.labels == reference.labels
            assert fast.skipped == reference.skipped
            np.testing.assert_allclose(
                fast.values, reference.values, rtol=1e-12, atol=1e-12
            )

    def test_metric_objects_accepted(self, btc_engine):
        from repro.metrics.base import get_metric

        sweep = btc_engine.measure_sliding_many((get_metric("gini"), "entropy"), 1008)
        assert set(sweep) == {"gini", "entropy"}

    def test_unknown_metric_raises(self, btc_engine):
        with pytest.raises(MetricError):
            btc_engine.measure_calendar_many(("gini", "no-such-metric"), "day")

    def test_sliding_cache_shared_across_metrics(self, btc_engine):
        btc_engine.measure_sliding("gini", 1008)
        assert (1008, 504) in btc_engine._sliding_cache
        cached = btc_engine._sliding_cache[(1008, 504)][0]
        btc_engine.measure_sliding("entropy", 1008)
        assert btc_engine._sliding_cache[(1008, 504)][0] is cached


class TestMeasureManyEmptyFamily:
    def test_family_larger_than_chain_yields_empty_series(self, btc_engine):
        n = btc_engine.credits.n_blocks
        sweep = btc_engine.measure_sliding_many(("gini",), n + 10, n + 10)
        assert len(sweep["gini"]) == 0
