"""Property: fault-injected ingestion never changes measured series.

For ANY fault schedule (random seed, random rates over every fault
class), ingesting through the injector with retries and refetch repair
must yield Gini/entropy/Nakamoto series byte-identical to the clean run,
under all four attribution policies.  This is the resilience layer's
acceptance invariant (the ``repro chaos`` command asserts the same thing
on the calibrated chains).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.pools import PoolInfo, PoolRegistry
from repro.core.engine import MeasurementEngine
from repro.resilience import FaultInjector, FaultPlan, chains_equal, fetch_chain
from repro.resilience.retry import ManualClock, RetryPolicy
from tests.conftest import make_tiny_chain

#: Sleeps resolve instantly on ManualClock, so a deep retry budget is
#: free — it keeps the worst-case schedules Hypothesis finds (many
#: consecutive injected failures on one read) inside the invariant.
DEEP_RETRY = RetryPolicy(max_attempts=30, base_delay=0.0001, max_delay=0.001, jitter=0.0)

REGISTRY = PoolRegistry(
    [PoolInfo("PoolA", "p0", 0.5, 0.5), PoolInfo("PoolB", "p1", 0.3, 0.3)]
)

POLICIES = (
    ("per-address", None),
    ("first-address", None),
    ("fractional", None),
    ("pool", REGISTRY),
)

METRICS = ("gini", "entropy", "nakamoto")


def _source_chain():
    rng = np.random.default_rng(42)
    producers = []
    for i in range(150):
        k = int(rng.integers(1, 4))
        producers.append([f"p{int(j)}" for j in rng.choice(7, size=k, replace=False)])
    return make_tiny_chain(producers)


SOURCE = _source_chain()
CLEAN = fetch_chain(SOURCE, page_size=16)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    rate=st.floats(min_value=0.02, max_value=0.25),
)
def test_any_fault_schedule_recovers_byte_identical_series(seed, rate):
    injector = FaultInjector(FaultPlan.default(rate=rate), seed=seed)
    faulted = fetch_chain(
        SOURCE,
        page_size=16,
        injector=injector,
        retry_policy=DEEP_RETRY,
        clock=ManualClock(),
        seed=seed,
    )
    assert chains_equal(faulted.chain, CLEAN.chain)
    for policy, registry in POLICIES:
        clean_engine = MeasurementEngine.from_chain(CLEAN.chain, policy, registry)
        faulted_engine = MeasurementEngine.from_chain(
            faulted.chain, policy, registry, quality=faulted.report.as_dict()
        )
        for metric in METRICS:
            a = clean_engine.measure_sliding(metric, SOURCE.spec.window_day)
            b = faulted_engine.measure_sliding(metric, SOURCE.spec.window_day)
            assert a.values.tobytes() == b.values.tobytes(), (
                f"{policy}/{metric} diverged under fault seed {seed}"
            )
            assert a.labels == b.labels
            # Provenance rides along without affecting equality of values.
            assert b.quality is not None and a.quality is None


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_fault_injection_is_reproducible(seed):
    def run():
        injector = FaultInjector(FaultPlan.default(), seed=seed)
        result = fetch_chain(
            SOURCE,
            page_size=16,
            injector=injector,
            retry_policy=DEEP_RETRY,
            clock=ManualClock(),
            seed=seed,
        )
        return dict(injector.fired), result.report.as_dict()

    assert run() == run()
