"""Tests for series summaries."""

import pytest

from repro.core.summary import summarize
from tests.core.test_series import make_series


class TestSummarize:
    def test_fields(self):
        summary = summarize(make_series([1.0, 2.0, 3.0, 4.0]))
        assert summary.n_windows == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == 2.5
        assert summary.chain_name == "testchain"
        assert summary.metric_name == "gini"
        assert summary.window_desc == "fixed-day"

    def test_quantiles_ordered(self):
        summary = summarize(make_series(list(range(100))))
        assert summary.q05 < summary.median < summary.q95

    def test_as_dict_roundtrips_all_fields(self):
        summary = summarize(make_series([1.0, 2.0]))
        record = summary.as_dict()
        assert record["n_windows"] == 2
        assert set(record) >= {
            "chain_name", "metric_name", "window_desc", "mean", "std",
            "minimum", "maximum", "median", "q05", "q95",
            "coefficient_of_variation",
        }

    def test_str_is_readable(self):
        text = str(summarize(make_series([1.0, 2.0])))
        assert "testchain/gini/fixed-day" in text
        assert "mean=1.5" in text

    def test_cv_matches_series(self):
        series = make_series([2.0, 4.0])
        assert summarize(series).coefficient_of_variation == pytest.approx(
            series.coefficient_of_variation()
        )
