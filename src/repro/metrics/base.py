"""Metric protocol, validation and registry.

A *metric* is anything with a ``name`` and a ``compute(values) -> float``
where ``values`` is a 1-D array of positive per-entity credit totals.  The
registry lets the measurement engine and the CLI look metrics up by name;
:func:`register_metric` accepts user-defined metrics (see
``examples/custom_metric.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.errors import MetricError


@runtime_checkable
class Metric(Protocol):
    """The interface the measurement engine expects."""

    name: str

    def compute(self, values: np.ndarray) -> float:
        """Reduce a per-entity credit distribution to a scalar."""
        ...  # pragma: no cover - protocol definition


@dataclass(frozen=True)
class FunctionMetric:
    """Adapts a plain function to the :class:`Metric` protocol."""

    name: str
    fn: Callable[[np.ndarray], float]

    def compute(self, values: np.ndarray) -> float:
        """Apply the wrapped function to the distribution."""
        return self.fn(values)


def validate_distribution(values: np.ndarray | list[float]) -> np.ndarray:
    """Validate and canonicalize a credit distribution.

    Requires a non-empty 1-D array of finite, non-negative values with a
    positive sum; zero entries are dropped (an entity with zero credits in
    the window is simply absent from it).
    """
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise MetricError(f"distribution must be 1-D, got shape {array.shape}")
    if array.size == 0:
        raise MetricError("distribution must not be empty")
    if not np.all(np.isfinite(array)):
        raise MetricError("distribution contains non-finite values")
    if np.any(array < 0):
        raise MetricError("distribution contains negative values")
    array = array[array > 0]
    if array.size == 0:
        raise MetricError("distribution sums to zero")
    return array


_REGISTRY: dict[str, Metric] = {}


def register_metric(metric: Metric, overwrite: bool = False) -> None:
    """Add ``metric`` to the global registry under ``metric.name``."""
    if not metric.name:
        raise MetricError("metric name must be non-empty")
    if metric.name in _REGISTRY and not overwrite:
        raise MetricError(f"metric {metric.name!r} is already registered")
    _REGISTRY[metric.name] = metric


def get_metric(name: str) -> Metric:
    """Look a metric up by name; raise :class:`MetricError` if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise MetricError(f"unknown metric {name!r}; available: {known}") from None


def available_metrics() -> tuple[str, ...]:
    """Sorted names of all registered metrics."""
    return tuple(sorted(_REGISTRY))
