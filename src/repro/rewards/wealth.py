"""Wealth attribution and cumulative-wealth measurement.

Income goes to the block's payout (first) address; multi-coinbase blocks
split the reward evenly across their addresses — the monetary counterpart
of the paper's fractional attribution.  Cumulative wealth at a checkpoint
is each entity's total income over all blocks up to it; measuring a
decentralization metric over those distributions yields a *wealth
decentralization* series.
"""

from __future__ import annotations

import numpy as np

from repro.chain.attribution import Credits, attribute
from repro.chain.chain import Chain
from repro.core.series import MeasurementSeries
from repro.errors import MeasurementError
from repro.metrics.base import Metric, get_metric
from repro.rewards.schedule import RewardSchedule


def reward_credits(chain: Chain, schedule: RewardSchedule, seed: int = 2019) -> Credits:
    """Credits whose weights are native-unit income instead of block counts.

    Rewards split evenly among a block's coinbase addresses (fractional
    attribution scaled by the block's reward).
    """
    base = attribute(chain, "fractional")
    rewards = schedule.draw(chain.n_blocks, seed)
    per_credit = rewards[base.block_positions]
    return Credits(
        chain_name=base.chain_name,
        policy=f"reward-{schedule.name}",
        entity_ids=base.entity_ids,
        weights=base.weights * per_credit,
        block_positions=base.block_positions,
        timestamps=base.timestamps,
        block_offsets=base.block_offsets,
        entity_names=base.entity_names,
    )


def total_rewards_by_entity(credits: Credits) -> list[tuple[str, float]]:
    """Total income per entity, heaviest first."""
    return credits.top_entities(0, credits.n_credits, k=credits.n_entities)


def cumulative_wealth_series(
    credits: Credits,
    metric: str | Metric,
    checkpoints: int = 12,
) -> MeasurementSeries:
    """Measure ``metric`` over the cumulative wealth distribution.

    The chain is divided into ``checkpoints`` equal block spans; at each
    checkpoint the metric is computed over every entity's total income
    from block 0 to that point.  Unlike the paper's per-window series this
    is monotone-information: each point sees strictly more history.
    """
    if checkpoints < 1:
        raise MeasurementError(f"checkpoints must be >= 1, got {checkpoints}")
    resolved = get_metric(metric) if isinstance(metric, str) else metric
    n_blocks = credits.n_blocks
    if n_blocks == 0:
        raise MeasurementError("credits cover no blocks")
    boundaries = np.linspace(0, n_blocks, checkpoints + 1).round().astype(int)[1:]
    indices: list[int] = []
    labels: list[str] = []
    values: list[float] = []
    for i, stop_block in enumerate(boundaries):
        lo, hi = credits.credit_range_for_blocks(0, int(stop_block))
        if hi <= lo:
            continue
        distribution = credits.distribution(lo, hi)
        indices.append(i)
        fraction = int(stop_block) / n_blocks
        labels.append(f"first {fraction:.0%} of blocks")
        values.append(float(resolved.compute(distribution)))
    return MeasurementSeries(
        chain_name=credits.chain_name,
        metric_name=resolved.name,
        window_desc=f"cumulative-wealth[{checkpoints}]",
        indices=np.asarray(indices, dtype=np.int64),
        labels=tuple(labels),
        values=np.asarray(values, dtype=np.float64),
    )
