"""Tests for the Prometheus text exposition renderer.

Beyond the happy path, these pin the edge cases a scraper cares about:
name/label sanitization onto the exposition grammar, the empty registry,
cumulative bucket monotonicity past the percentile sample cap, and
scraping concurrently with a recording thread.
"""

import re
import threading

import pytest

from repro.obs.metrics import (
    _HISTOGRAM_SAMPLE_CAP,
    MetricsRegistry,
    TimingHistogram,
)
from repro.obs.prometheus import (
    escape_label_value,
    format_value,
    render_prometheus,
    sanitize_label_name,
    sanitize_metric_name,
)

#: The exposition format's metric-name grammar.
_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
#: One sample line: name, optional comma-separated labels, value.
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? "
    r"(NaN|[+-]Inf|-?[0-9].*)$"
)


def assert_valid_exposition(text: str) -> None:
    """Every line is a comment or a grammar-legal sample."""
    for line in text.splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert _SAMPLE_LINE.match(line), f"bad exposition line: {line!r}"


class TestSanitization:
    def test_dotted_names_become_underscored(self):
        assert (
            sanitize_metric_name("engine.sliding_cache.hit")
            == "repro_engine_sliding_cache_hit"
        )

    @pytest.mark.parametrize(
        "raw",
        ["weird name!", "2phase", "a..b", "sql/queries", "héllo", "-leading"],
    )
    def test_any_input_maps_onto_the_grammar(self, raw):
        assert _METRIC_NAME.match(sanitize_metric_name(raw))

    def test_underscore_runs_are_squeezed(self):
        assert sanitize_metric_name("a..b", namespace="") == "a_b"

    def test_leading_digit_gets_a_guard(self):
        assert sanitize_metric_name("2fast", namespace="")[0] == "_"

    def test_label_names_reject_colons(self):
        assert sanitize_label_name("le:gacy") == "le_gacy"
        assert _METRIC_NAME.match(sanitize_label_name("9lives"))

    def test_label_value_escapes(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


class TestFormatValue:
    def test_integers_lose_the_decimal(self):
        assert format_value(3.0) == "3"
        assert format_value(0.0) == "0"

    def test_floats_round_trip(self):
        assert float(format_value(0.6180339887)) == pytest.approx(0.6180339887)

    def test_non_finite(self):
        assert format_value(float("nan")) == "NaN"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"


class TestRender:
    def test_empty_registry_renders_only_build_info(self):
        text = render_prometheus(MetricsRegistry())
        assert "repro_build_info{" in text
        assert_valid_exposition(text)
        # Nothing but the identity gauge: no counters/histograms leak in.
        samples = [
            line for line in text.splitlines() if not line.startswith("#")
        ]
        assert len(samples) == 1 and samples[0].startswith("repro_build_info")

    def test_build_info_carries_version_and_python_labels(self):
        import platform

        import repro

        text = render_prometheus(MetricsRegistry())
        assert f'version="{repro.__version__}"' in text
        assert f'python="{platform.python_version()}"' in text
        assert 'platform="' in text

    def test_counter_becomes_total_with_metadata(self):
        registry = MetricsRegistry()
        registry.counter("streaming.evaluations").inc(7)
        text = render_prometheus(registry)
        assert "# TYPE repro_streaming_evaluations_total counter" in text
        assert "repro_streaming_evaluations_total 7" in text
        assert_valid_exposition(text)

    def test_counter_named_total_is_not_doubled(self):
        registry = MetricsRegistry()
        registry.counter("monitor.alerts_total").inc()
        text = render_prometheus(registry)
        assert "repro_monitor_alerts_total 1" in text
        assert "total_total" not in text

    def test_gauge_keeps_its_name(self):
        registry = MetricsRegistry()
        registry.gauge("monitor.lag_blocks").set(42.0)
        text = render_prometheus(registry)
        assert "# TYPE repro_monitor_lag_blocks gauge" in text
        assert "repro_monitor_lag_blocks 42" in text

    def test_histogram_exposes_buckets_sum_count(self):
        registry = MetricsRegistry()
        timing = registry.timing("monitor.push_seconds")
        for value in (0.0001, 0.3, 100.0):
            timing.observe(value)
        text = render_prometheus(registry)
        assert "# TYPE repro_monitor_push_seconds histogram" in text
        assert 'repro_monitor_push_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_monitor_push_seconds_count 3" in text
        assert f"repro_monitor_push_seconds_sum {100.3001!r}" in text
        assert_valid_exposition(text)

    def test_histogram_name_gains_seconds_suffix_once(self):
        registry = MetricsRegistry()
        registry.timing("chain_cache.build_seconds").observe(0.1)
        registry.timing("sweep").observe(0.1)
        text = render_prometheus(registry)
        assert "repro_chain_cache_build_seconds_count 1" in text
        assert "seconds_seconds" not in text
        assert "repro_sweep_seconds_count 1" in text

    def test_output_is_name_sorted_and_newline_terminated(self):
        registry = MetricsRegistry()
        registry.counter("zeta")
        registry.counter("alpha")
        text = render_prometheus(registry)
        assert text.index("repro_alpha") < text.index("repro_zeta")
        assert text.endswith("\n")


class TestBucketCorrectness:
    def test_cumulative_buckets_are_monotone_and_end_at_count(self):
        hist = TimingHistogram("t")
        for i in range(1000):
            hist.observe((i % 97) * 0.013)
        buckets = hist.cumulative_buckets()
        cumulative = [count for _, count in buckets]
        assert cumulative == sorted(cumulative)
        assert buckets[-1] == (float("inf"), 1000)
        bounds = [bound for bound, _ in buckets]
        assert bounds == sorted(bounds)

    def test_bucket_counts_exact_past_the_sample_cap(self):
        # Percentiles come from a bounded sample; bucket counts must not.
        hist = TimingHistogram("t", bucket_bounds=(0.5,))
        n = _HISTOGRAM_SAMPLE_CAP + 500
        for i in range(n):
            hist.observe(0.1 if i % 2 == 0 else 0.9)
        (le_half, below), (_, total) = hist.cumulative_buckets()
        assert le_half == 0.5
        assert below == (n + 1) // 2
        assert total == n

    def test_boundary_observation_lands_in_its_bucket(self):
        # The exposition's `le` is inclusive: observe(bound) counts in it.
        hist = TimingHistogram("t", bucket_bounds=(0.5, 1.0))
        hist.observe(0.5)
        assert hist.cumulative_buckets()[0] == (0.5, 1)


class TestConcurrentScrape:
    def test_scrape_while_recording_new_instruments(self):
        """A scraping thread must never trip over a growing registry."""
        registry = MetricsRegistry()
        stop = threading.Event()
        errors: list[BaseException] = []

        def record():
            i = 0
            while not stop.is_set():
                registry.counter(f"churn.counter_{i % 64}").inc()
                registry.gauge(f"churn.gauge_{i % 64}").set(i)
                registry.timing(f"churn.timing_{i % 64}").observe(i * 1e-4)
                i += 1

        def scrape():
            try:
                while not stop.is_set():
                    assert_valid_exposition(render_prometheus(registry))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=record) for _ in range(2)]
        threads.append(threading.Thread(target=scrape))
        for thread in threads:
            thread.start()
        try:
            threads[-1].join(timeout=1.0)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=5.0)
        assert not errors
        assert_valid_exposition(render_prometheus(registry))
