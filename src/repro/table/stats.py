"""ANALYZE-style table statistics for cost-based query planning.

:func:`collect_statistics` walks a :class:`~repro.table.Table` once and
produces a :class:`TableStatistics` — row count plus, per column, the
distinct count, null count, numeric min/max, and the top most-common
values with their frequencies.  The SQL optimizer uses these to estimate
predicate selectivity and join cardinality; tables without statistics
fall back to the System-R-style default fractions below.

Statistics are a snapshot: they describe the table object they were
collected from.  The query engine tracks which table object each snapshot
was taken from to detect staleness after a table is replaced; estimates
are ratios (selectivities, null fractions) rather than absolute counts,
so stale statistics degrade gracefully against new row counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.table.table import Table

#: Default selectivity fractions used when statistics cannot answer.
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 0.3
DEFAULT_BETWEEN_SELECTIVITY = 0.25
DEFAULT_LIKE_SELECTIVITY = 0.25
DEFAULT_ISNULL_SELECTIVITY = 0.05
DEFAULT_SELECTIVITY = 0.33

#: How many most-common values to keep per column.
DEFAULT_MOST_COMMON = 10


@dataclass(frozen=True)
class ColumnStatistics:
    """Distribution summary of one column."""

    name: str
    kind: str
    n_rows: int
    n_null: int
    n_distinct: int
    min_value: float | None = None
    max_value: float | None = None
    most_common: tuple[tuple[Any, int], ...] = field(default_factory=tuple)

    @property
    def null_fraction(self) -> float:
        """Fraction of rows that are NULL (None or NaN)."""
        return self.n_null / self.n_rows if self.n_rows else 0.0

    @property
    def mcv_rows(self) -> int:
        """Rows covered by the recorded most-common values."""
        return sum(count for _, count in self.most_common)

    def eq_selectivity(self, value: Any) -> float:
        """Estimated fraction of rows where ``column = value``."""
        if self.n_rows == 0 or value is None:
            return 0.0
        if isinstance(value, float) and np.isnan(value):
            return 0.0
        for mcv, count in self.most_common:
            if _same_value(mcv, value):
                return _clamp(count / self.n_rows)
        if self.kind in ("int", "float") and self.min_value is not None:
            if not isinstance(value, (bool, str)) and (
                value < self.min_value or value > self.max_value
            ):
                return 0.0
        rest_distinct = self.n_distinct - len(self.most_common)
        if rest_distinct <= 0:
            # Every distinct value is in the MCV list and this one is not.
            return 0.0
        rest_rows = max(self.n_rows - self.n_null - self.mcv_rows, 0)
        return _clamp(rest_rows / rest_distinct / self.n_rows)

    def range_selectivity(self, op: str, value: Any) -> float:
        """Estimated fraction of rows where ``column <op> value``."""
        if self.n_rows == 0:
            return 0.0
        if (
            self.kind not in ("int", "float")
            or self.min_value is None
            or self.max_value is None
            or isinstance(value, (bool, str))
            or value is None
            or (isinstance(value, float) and np.isnan(value))
        ):
            return DEFAULT_RANGE_SELECTIVITY
        non_null = 1.0 - self.null_fraction
        span = self.max_value - self.min_value
        if span <= 0:
            point = self.min_value
            satisfied = {
                "<": value > point,
                "<=": value >= point,
                ">": value < point,
                ">=": value <= point,
            }[op]
            return _clamp(non_null if satisfied else 0.0)
        below = _clamp((float(value) - self.min_value) / span)
        if op in ("<", "<="):
            return _clamp(below * non_null)
        return _clamp((1.0 - below) * non_null)


@dataclass(frozen=True)
class TableStatistics:
    """Statistics for a whole table, keyed by column name."""

    row_count: int
    columns: Mapping[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics | None:
        """Statistics for ``name``, or None if the column is unknown."""
        return self.columns.get(name)


def collect_statistics(table: Table, most_common: int = DEFAULT_MOST_COMMON) -> TableStatistics:
    """Scan ``table`` and build a :class:`TableStatistics` snapshot."""
    columns: dict[str, ColumnStatistics] = {}
    for name in table.column_names:
        columns[name] = _column_statistics(table, name, most_common)
    return TableStatistics(row_count=table.num_rows, columns=columns)


def _column_statistics(table: Table, name: str, most_common: int) -> ColumnStatistics:
    column = table.column(name)
    values = column.values
    n_rows = len(column)
    if n_rows == 0:
        return ColumnStatistics(name=name, kind=column.kind, n_rows=0, n_null=0, n_distinct=0)
    if column.kind == "str":
        return _object_statistics(name, column.kind, values, most_common)
    if column.kind == "float":
        null_mask = np.isnan(values)
        valid = values[~null_mask]
        n_null = int(null_mask.sum())
    else:
        valid = values
        n_null = 0
    if valid.size == 0:
        return ColumnStatistics(
            name=name, kind=column.kind, n_rows=n_rows, n_null=n_null, n_distinct=0
        )
    distinct, counts = np.unique(valid, return_counts=True)
    mcv = _top_values(distinct, counts, most_common)
    if column.kind == "bool":
        min_value = max_value = None
    else:
        min_value = float(valid.min())
        max_value = float(valid.max())
    return ColumnStatistics(
        name=name,
        kind=column.kind,
        n_rows=n_rows,
        n_null=n_null,
        n_distinct=int(distinct.size),
        min_value=min_value,
        max_value=max_value,
        most_common=mcv,
    )


def _object_statistics(
    name: str, kind: str, values: np.ndarray, most_common: int
) -> ColumnStatistics:
    counts: dict[Any, int] = {}
    n_null = 0
    for value in values:
        if value is None:
            n_null += 1
        else:
            counts[value] = counts.get(value, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return ColumnStatistics(
        name=name,
        kind=kind,
        n_rows=len(values),
        n_null=n_null,
        n_distinct=len(counts),
        most_common=tuple((v, int(c)) for v, c in ranked[:most_common]),
    )


def _top_values(
    distinct: np.ndarray, counts: np.ndarray, most_common: int
) -> tuple[tuple[Any, int], ...]:
    """Top-k (value, count) pairs: highest count first, value ascending on ties.

    ``distinct`` comes from ``np.unique`` so it is already value-ascending;
    a stable sort on descending count preserves that tie order.
    """
    order = np.argsort(-counts, kind="stable")[:most_common]
    return tuple((distinct[i].item(), int(counts[i])) for i in order)


def _same_value(a: Any, b: Any) -> bool:
    """Equality matching SQL ``=`` semantics across int/float/bool scalars."""
    if isinstance(a, str) or isinstance(b, str):
        return a == b
    try:
        return bool(a == b)
    except TypeError:
        return False


def _clamp(value: float) -> float:
    return min(max(float(value), 0.0), 1.0)
