"""Fork-safety: workers must not inherit live coordinator state.

A forked worker starts as a memory copy of the coordinator — a live
tracer (enabled flag, recorded spans) and the telemetry server's handler
plumbing would come along silently.  The pool initializer scrubs that
state; these tests prove it by probing workers while the parent is
actively tracing and serving HTTP.

Worker-side tracing still happens — but only *deliberately*: when the
coordinator is recording, each task runs under a fresh per-task child
tracer carrying the propagated trace id (distributed tracing), which is
torn down after the task.  The tests below distinguish that from
inheritance: recorded coordinator spans never appear in a worker, and
with coordinator tracing off the workers see tracing fully disabled.
"""

import os

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.parallel import WorkerPool
from repro.parallel.work import worker_probe
from repro.serve import TelemetryServer


@pytest.fixture
def tracing_parent():
    """Enable tracing in the parent and leave some recorded spans behind."""
    obs.enable_tracing()
    with obs.span("parent.only"):
        pass
    try:
        yield obs.get_tracer()
    finally:
        obs.disable_tracing()
        obs.get_tracer().reset()


def _probe(pool: WorkerPool, n: int = 4) -> list[dict]:
    return pool.map_shards(worker_probe, [() for _ in range(n)])


class TestForkSafety:
    def test_worker_does_not_inherit_tracing(self, tracing_parent):
        # With the coordinator recording, tasks run under a per-task child
        # tracer (distributed tracing) — but the parent's recorded spans
        # must never leak in, and the child carries the propagated trace
        # id rather than an inherited recording session.
        assert tracing_parent.enabled
        assert len(tracing_parent.spans) >= 1
        with WorkerPool(2) as pool:
            probes = _probe(pool)
        for probe in probes:
            assert probe["in_worker"] is True
            assert probe["tracing_enabled"] is True
            assert probe["tracer_spans"] == 0
            assert probe["trace_id"] == tracing_parent.trace_id

    def test_worker_tracing_off_without_coordinator_tracing(self):
        # No recording session in the parent -> no context propagated ->
        # the scrubbed state is all a worker ever sees.
        assert not obs.tracing_enabled()
        with WorkerPool(2) as pool:
            probes = _probe(pool)
        for probe in probes:
            assert probe["in_worker"] is True
            assert probe["tracing_enabled"] is False
            assert probe["tracer_spans"] == 0
            assert probe["trace_id"] is None

    def test_worker_does_not_inherit_server_threads(self, tracing_parent):
        # A live HTTP server means extra parent threads; only the forking
        # thread survives into the child, and the initializer must not
        # start new ones.
        server = TelemetryServer(MetricsRegistry(), status_fn=dict)
        server.start()
        try:
            with WorkerPool(2) as pool:
                probes = _probe(pool)
        finally:
            server.stop()
        for probe in probes:
            assert probe["thread_count"] == 1

    def test_workers_are_separate_processes(self):
        with WorkerPool(2) as pool:
            probes = _probe(pool, n=6)
        assert all(probe["pid"] != os.getpid() for probe in probes)

    def test_parent_tracing_survives_pool_use(self, tracing_parent):
        with WorkerPool(2) as pool:
            pool.map_shards(worker_probe, [()])
        assert tracing_parent.enabled
        # The coordinator-side shard waits were themselves traced, and the
        # worker's child spans were adopted into the same trace with the
        # worker's pid stamped on them.
        shard_spans = [s for s in tracing_parent.spans if s.name == "parallel.shard"]
        worker_spans = [s for s in tracing_parent.spans if s.name == "worker.shard"]
        assert shard_spans and worker_spans
        for span in worker_spans:
            assert span.pid is not None and span.pid != os.getpid()
