"""The paper's full comparison study: Bitcoin vs Ethereum, 2019.

Reproduces the headline findings (§II-C3): under all three metrics and all
three granularities, Bitcoin is more decentralized while Ethereum is more
stable.  Exports every figure's data series to ``out/figures/``.

Run with::

    python examples/btc_vs_eth_2019.py [--export]
"""

import sys

from repro import DecentralizationStudy
from repro.viz import ascii_chart, export_figure


def main() -> None:
    study = DecentralizationStudy(seed=2019)

    print("=== headline findings (daily granularity) ===")
    findings = study.findings()
    for comparison in findings.level:
        direction = "higher" if comparison.higher_is_more_decentralized else "lower"
        print(
            f"{comparison.metric_name:<10s} ({direction} wins): "
            f"btc={comparison.mean_a:.4f}  eth={comparison.mean_b:.4f}  "
            f"-> more decentralized: {comparison.winner}"
        )
    for comparison in findings.stability.comparisons:
        print(
            f"{comparison.metric_name:<10s} stability: "
            f"btc CV={comparison.cv_a:.4f}  eth CV={comparison.cv_b:.4f}  "
            f"-> more stable: {comparison.winner}"
        )

    print("\n=== Fig. 1 vs Fig. 4: Gini by granularity ===")
    for which, figure_id in (("btc", 1), ("eth", 4)):
        figure = study.figure(figure_id)
        means = {label: series.mean() for label, series in figure.series.items()}
        print(f"{which}: " + "  ".join(f"{g}={means[g]:.3f}" for g in ("day", "week", "month")))

    print("\n=== daily Gini, both chains ===")
    print(
        ascii_chart(
            study.engine("btc").measure_calendar("gini", "day"),
            title="bitcoin daily gini",
        )
    )
    print(
        ascii_chart(
            study.engine("eth").measure_calendar("gini", "day"),
            title="ethereum daily gini",
        )
    )

    if "--export" in sys.argv[1:]:
        for figure in study.all_figures():
            paths = export_figure(figure, "out/figures")
            print(f"exported {figure.figure_id}: {len(paths)} files")


if __name__ == "__main__":
    main()
