"""Partitioned on-disk chain storage.

A stored chain is a directory::

    <root>/<name>/
        manifest.json        spec fields + partition list + checksums
        producers.json       the shared producer-name table
        part-2019-01.npz     one numpy archive per calendar month
        ...
        part-2019-12.npz

Each partition holds the month's ``heights``, ``timestamps``, per-block
``counts`` (producers per block) and ``producer_ids``.  Loading
concatenates partitions in order and rebuilds the CSR offsets, validating
against the manifest's row counts.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path

import numpy as np

from repro import obs
from repro.chain.chain import Chain
from repro.chain.specs import ChainSpec
from repro.errors import ReproError
from repro.util.timeutils import month_index


class ChainStoreError(ReproError):
    """Raised on missing, corrupt or inconsistent stored chains."""


_MANIFEST_VERSION = 1

#: Suffix of the staging directory a save builds in before the atomic
#: rename; a leftover one (from a killed process) is garbage, never data.
_TMP_SUFFIX = ".tmp"


def _sha256(path: Path) -> str:
    """Hex digest of a file's bytes (the stored-partition checksum)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class ChainStore:
    """Stores chains under a root directory, partitioned by month."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- catalog -----------------------------------------------------------

    def names(self) -> list[str]:
        """Names of all stored chains, sorted.

        Staging directories left by a killed mid-write save are not
        chains (their manifest is written into the staging dir last, and
        the rename is atomic) and are never listed.
        """
        return sorted(
            child.name
            for child in self.root.iterdir()
            if (child / "manifest.json").is_file()
            and not child.name.endswith(_TMP_SUFFIX)
        )

    def exists(self, name: str) -> bool:
        """True if a chain named ``name`` is stored (never a staging dir)."""
        if name.endswith(_TMP_SUFFIX):
            return False
        return (self.root / name / "manifest.json").is_file()

    def delete(self, name: str) -> None:
        """Remove a stored chain (no error if absent)."""
        directory = self.root / name
        if not directory.is_dir():
            return
        for child in directory.iterdir():
            child.unlink()
        directory.rmdir()

    # -- save ---------------------------------------------------------------

    def save(self, name: str, chain: Chain, overwrite: bool = False) -> Path:
        """Persist ``chain`` as ``name``; returns the chain directory."""
        with obs.span("store.save", dataset=name, n_blocks=chain.n_blocks):
            return self._save(name, chain, overwrite)

    def _save(self, name: str, chain: Chain, overwrite: bool) -> Path:
        if not name or "/" in name or name.endswith(_TMP_SUFFIX):
            raise ChainStoreError(f"invalid chain name: {name!r}")
        directory = self.root / name
        if self.exists(name) and not overwrite:
            raise ChainStoreError(f"chain {name!r} already exists")
        # Write-temp-then-rename: everything (partitions, producers,
        # manifest last) is staged in a sibling directory, then moved to
        # the final name with one atomic os.replace.  A process killed
        # mid-write leaves only a staging directory, which no load or
        # listing ever treats as a chain.
        staging = self.root / f"{name}{_TMP_SUFFIX}"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        try:
            months = np.asarray(month_index(chain.timestamps))
            counts = chain.producer_counts()
            partitions = []
            for month in np.unique(months):
                rows = np.flatnonzero(months == month)
                start, stop = int(rows[0]), int(rows[-1]) + 1
                lo, hi = int(chain.offsets[start]), int(chain.offsets[stop])
                label = f"2019-{int(month) + 1:02d}" if 0 <= month < 12 else f"m{int(month)}"
                path = staging / f"part-{label}.npz"
                np.savez_compressed(
                    path,
                    heights=chain.heights[start:stop],
                    timestamps=chain.timestamps[start:stop],
                    counts=counts[start:stop],
                    producer_ids=chain.producer_ids[lo:hi],
                )
                partitions.append(
                    {
                        "file": path.name,
                        "n_blocks": stop - start,
                        "n_credits": hi - lo,
                        "sha256": _sha256(path),
                    }
                )
            producers_path = staging / "producers.json"
            producers_path.write_text(
                json.dumps(list(chain.producer_names)), encoding="utf-8"
            )
            manifest = {
                "version": _MANIFEST_VERSION,
                "spec": {
                    "name": chain.spec.name,
                    "start_height": chain.spec.start_height,
                    "block_count": chain.spec.block_count,
                    "target_interval": chain.spec.target_interval,
                    "blocks_per_day": chain.spec.blocks_per_day,
                    "window_day": chain.spec.window_day,
                    "window_week": chain.spec.window_week,
                    "window_month": chain.spec.window_month,
                },
                "n_blocks": chain.n_blocks,
                "n_credits": chain.n_credits,
                "n_producers": chain.n_producers,
                "producers_sha256": _sha256(producers_path),
                "partitions": partitions,
            }
            (staging / "manifest.json").write_text(
                json.dumps(manifest, indent=2), encoding="utf-8"
            )
            if directory.exists():
                self.delete(name)
            os.replace(staging, directory)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return directory

    # -- load ----------------------------------------------------------------

    def load(self, name: str) -> Chain:
        """Load a stored chain; raises :class:`ChainStoreError` if broken."""
        with obs.span("store.load", dataset=name):
            return self._load(name)

    def _load(self, name: str) -> Chain:
        directory = self.root / name
        manifest_path = directory / "manifest.json"
        if not manifest_path.is_file():
            raise ChainStoreError(f"no stored chain named {name!r} under {self.root}")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ChainStoreError(f"corrupt manifest for {name!r}: {exc}") from exc
        if manifest.get("version") != _MANIFEST_VERSION:
            raise ChainStoreError(
                f"unsupported manifest version {manifest.get('version')!r}"
            )
        spec = ChainSpec(**manifest["spec"])
        producers_path = directory / "producers.json"
        if not producers_path.is_file():
            raise ChainStoreError(f"missing producers.json for {name!r}")
        producers_digest = manifest.get("producers_sha256")
        if (
            producers_digest is not None
            and _sha256(producers_path) != producers_digest
        ):
            obs.get_tracer().metrics.counter("store.checksum_failures").inc()
            raise ChainStoreError(
                f"producers.json of {name!r} failed its checksum"
            )
        try:
            producers = json.loads(producers_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError) as exc:
            raise ChainStoreError(
                f"corrupt producers.json for {name!r}: {exc}"
            ) from exc
        heights, timestamps, counts, producer_ids = [], [], [], []
        for partition in manifest["partitions"]:
            path = directory / partition["file"]
            if not path.is_file():
                raise ChainStoreError(f"missing partition file {path.name}")
            # Checksums entered the manifest alongside atomic writes;
            # older stores without them still load (nothing to verify).
            expected_digest = partition.get("sha256")
            if expected_digest is not None and _sha256(path) != expected_digest:
                obs.get_tracer().metrics.counter(
                    "store.checksum_failures"
                ).inc()
                raise ChainStoreError(
                    f"partition {path.name} of {name!r} failed its checksum "
                    "(corrupt cache bytes)"
                )
            try:
                with np.load(path) as archive:
                    if archive["heights"].shape[0] != partition["n_blocks"]:
                        raise ChainStoreError(
                            f"partition {path.name}: expected {partition['n_blocks']} "
                            f"blocks, found {archive['heights'].shape[0]}"
                        )
                    heights.append(archive["heights"])
                    timestamps.append(archive["timestamps"])
                    counts.append(archive["counts"])
                    producer_ids.append(archive["producer_ids"])
            except (ValueError, OSError, KeyError, EOFError) as exc:
                raise ChainStoreError(
                    f"partition {path.name} of {name!r} is unreadable: {exc}"
                ) from exc
        all_counts = np.concatenate(counts) if counts else np.zeros(0, dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(all_counts)))
        chain = Chain(
            spec,
            np.concatenate(heights) if heights else np.zeros(0, dtype=np.int64),
            np.concatenate(timestamps) if timestamps else np.zeros(0, dtype=np.int64),
            offsets,
            np.concatenate(producer_ids) if producer_ids else np.zeros(0, dtype=np.int64),
            producers,
        )
        if chain.n_blocks != manifest["n_blocks"]:
            raise ChainStoreError(
                f"manifest says {manifest['n_blocks']} blocks, loaded {chain.n_blocks}"
            )
        if chain.n_credits != manifest["n_credits"]:
            raise ChainStoreError(
                f"manifest says {manifest['n_credits']} credits, loaded {chain.n_credits}"
            )
        return chain

    def verify(self, name: str) -> list[str]:
        """Check a stored chain's files against their manifest checksums.

        Returns a list of human-readable problems (empty = intact).
        Unlike :meth:`load`, this never raises on corruption — it is the
        inspection half of the detect-and-rebuild cycle in
        :func:`repro.data.cache.cached_chain`.
        """
        directory = self.root / name
        manifest_path = directory / "manifest.json"
        if not manifest_path.is_file():
            return [f"no stored chain named {name!r}"]
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            return [f"corrupt manifest: {exc}"]
        problems: list[str] = []
        producers_digest = manifest.get("producers_sha256")
        producers_path = directory / "producers.json"
        if not producers_path.is_file():
            problems.append("missing producers.json")
        elif producers_digest is not None and _sha256(producers_path) != producers_digest:
            problems.append("producers.json failed its checksum")
        for partition in manifest.get("partitions", []):
            path = directory / partition["file"]
            if not path.is_file():
                problems.append(f"missing partition {partition['file']}")
            elif (
                partition.get("sha256") is not None
                and _sha256(path) != partition["sha256"]
            ):
                problems.append(f"partition {partition['file']} failed its checksum")
        return problems

    def load_months(self, name: str, months: list[int]) -> Chain:
        """Load only the given 0-based months of a stored chain.

        Partition pruning: untouched partition files are never read.  The
        resulting chain keeps the original spec but holds only the selected
        months' blocks.
        """
        directory = self.root / name
        manifest_path = directory / "manifest.json"
        if not manifest_path.is_file():
            raise ChainStoreError(f"no stored chain named {name!r} under {self.root}")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        wanted = {f"part-2019-{m + 1:02d}.npz" for m in months}
        unknown = wanted - {p["file"] for p in manifest["partitions"]}
        if unknown:
            raise ChainStoreError(f"months not present in store: {sorted(unknown)}")
        spec = ChainSpec(**manifest["spec"])
        producers = json.loads(
            (directory / "producers.json").read_text(encoding="utf-8")
        )
        heights, timestamps, counts, producer_ids = [], [], [], []
        for partition in manifest["partitions"]:
            if partition["file"] not in wanted:
                continue
            with np.load(directory / partition["file"]) as archive:
                heights.append(archive["heights"])
                timestamps.append(archive["timestamps"])
                counts.append(archive["counts"])
                producer_ids.append(archive["producer_ids"])
        all_counts = np.concatenate(counts)
        offsets = np.concatenate(([0], np.cumsum(all_counts)))
        return Chain(
            spec,
            np.concatenate(heights),
            np.concatenate(timestamps),
            offsets,
            np.concatenate(producer_ids),
            producers,
        )
