"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics.uncertainty import bootstrap_ci


@pytest.fixture
def day_distribution():
    # A realistic Bitcoin day: ~20 pools + a few singletons, 150 blocks.
    return np.asarray(
        [21, 19, 17, 15, 13, 10, 8, 7, 5, 4, 3, 3, 2, 2, 1, 1, 1, 1, 1, 1],
        dtype=np.float64,
    )


class TestBootstrapCI:
    def test_interval_brackets_estimate(self, day_distribution):
        ci = bootstrap_ci(day_distribution, "gini", seed=1)
        assert ci.low <= ci.estimate <= ci.high
        assert ci.width > 0

    def test_deterministic_per_seed(self, day_distribution):
        a = bootstrap_ci(day_distribution, "entropy", seed=5)
        b = bootstrap_ci(day_distribution, "entropy", seed=5)
        assert (a.low, a.high) == (b.low, b.high)

    def test_wider_level_gives_wider_interval(self, day_distribution):
        narrow = bootstrap_ci(day_distribution, "gini", level=0.80, seed=2)
        wide = bootstrap_ci(day_distribution, "gini", level=0.99, seed=2)
        assert wide.width > narrow.width

    def test_larger_windows_shrink_uncertainty(self, day_distribution):
        """A month of blocks pins the metric down far better than a day."""
        month = day_distribution * 30
        day_ci = bootstrap_ci(day_distribution, "gini", seed=3)
        month_ci = bootstrap_ci(month, "gini", seed=3)
        assert month_ci.width < day_ci.width / 2

    def test_nakamoto_ci_is_integerish(self, day_distribution):
        ci = bootstrap_ci(day_distribution, "nakamoto", seed=4)
        assert ci.low == int(ci.low)
        assert ci.high == int(ci.high)
        assert ci.contains(ci.estimate)

    def test_explains_daily_nakamoto_oscillation(self, day_distribution):
        """The paper's daily Nakamoto flips between 4 and 5 — the bootstrap
        shows both values are inside a single day's sampling noise."""
        ci = bootstrap_ci(day_distribution, "nakamoto", n_boot=500, seed=6)
        assert ci.low <= 4 <= ci.high or ci.low <= 5 <= ci.high
        assert ci.width >= 1

    def test_str_rendering(self, day_distribution):
        text = str(bootstrap_ci(day_distribution, "gini", seed=1))
        assert "gini = " in text
        assert "@95%" in text

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_boot": 5},
            {"level": 0.4},
            {"level": 1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, day_distribution, kwargs):
        with pytest.raises(MetricError):
            bootstrap_ci(day_distribution, "gini", **kwargs)

    def test_empty_distribution_rejected(self):
        with pytest.raises(MetricError):
            bootstrap_ci([], "gini")
