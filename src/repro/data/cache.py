"""Simulate-once chain caching on top of :class:`ChainStore`."""

from __future__ import annotations

import logging
import time
from typing import Callable

from repro import obs
from repro.chain.chain import Chain
from repro.data.store import ChainStore, ChainStoreError

logger = logging.getLogger(__name__)

#: Cache-miss rebuilds slower than this are worth an operator's attention:
#: on a live monitor they mean scrapes see a stalled pipeline, not a bug.
SLOW_BUILD_THRESHOLD_SECONDS = 5.0


def cached_chain(
    store: ChainStore,
    name: str,
    build: Callable[[], Chain],
    refresh: bool = False,
    repair: bool = True,
) -> Chain:
    """Return the stored chain ``name``, building and storing it if absent.

    ``build`` is only invoked on a cache miss (or when ``refresh`` is
    true), so expensive simulations — Ethereum's 2.2M blocks take several
    seconds — run once per store.  Hits and misses are counted on the
    :mod:`repro.obs` tracer (``chain_cache.hit`` / ``chain_cache.miss``),
    miss build time feeds the ``chain_cache.build_seconds`` histogram, and
    a rebuild slower than :data:`SLOW_BUILD_THRESHOLD_SECONDS` logs a
    warning correlated to the active span.

    A cached entry that fails to load — a checksum mismatch from flipped
    bytes, a truncated partition, a corrupt manifest — is *self-healing*:
    with ``repair`` (the default) the bad entry is deleted, rebuilt from
    ``build`` and re-stored, with the corruption counted on
    ``chain_cache.corrupt`` for the metrics endpoint.  Pass
    ``repair=False`` to surface the :class:`ChainStoreError` instead.

    >>> store = ChainStore(tmpdir)                              # doctest: +SKIP
    >>> eth = cached_chain(store, "eth-2019", simulate_ethereum_2019)  # doctest: +SKIP
    """
    if refresh or not store.exists(name):
        return _rebuild(store, name, build, "miss")
    try:
        chain = store.load(name)
    except ChainStoreError as exc:
        if not repair:
            raise
        registry = obs.get_tracer().metrics
        registry.counter("chain_cache.corrupt").inc()
        logger.warning(
            "cached chain %r failed to load (%s); quarantining and rebuilding",
            name, exc,
        )
        store.delete(name)
        return _rebuild(store, name, build, "corrupt_rebuild")
    obs.counter("chain_cache.hit")
    return chain


def _rebuild(
    store: ChainStore, name: str, build: Callable[[], Chain], reason: str
) -> Chain:
    obs.counter(f"chain_cache.{reason}")
    start = time.perf_counter()
    chain = build()
    elapsed = time.perf_counter() - start
    obs.timing("chain_cache.build_seconds", elapsed)
    if elapsed > SLOW_BUILD_THRESHOLD_SECONDS:
        logger.warning(
            "chain cache %s for %r took %.1fs to rebuild (threshold %.1fs)",
            reason, name, elapsed, SLOW_BUILD_THRESHOLD_SECONDS,
        )
    store.save(name, chain, overwrite=True)
    return chain
