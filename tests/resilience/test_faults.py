"""Fault spec parsing and deterministic seeded injection."""

import pytest

from repro.errors import (
    DeadlineExceededError,
    FaultSpecError,
    InjectedFaultError,
    ValidationError,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    corrupt_file_bytes,
    parse_fault_spec,
)
from repro.resilience.integrity import RawBlock


def page(n: int = 8, start: int = 100) -> list[RawBlock]:
    return [RawBlock(start + i, 1000 * i, (f"p{i}",)) for i in range(n)]


class TestSpecParsing:
    def test_single_clause(self):
        plan = parse_fault_spec("read_error:rate=0.5,max=3")
        assert plan.rules == (FaultRule("read_error", rate=0.5, max_count=3),)

    def test_multiple_clauses_and_defaults(self):
        plan = parse_fault_spec("timeout;truncate_page:rate=0.1")
        assert plan.kinds == ("timeout", "truncate_page")
        assert plan.rules[0].rate == 0.25  # default

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "   ",
            "bogus_kind",
            "read_error:rate=nope",
            "read_error:speed=3",
            "read_error:rate=1.5",
            "read_error:max=-1",
            "read_error;read_error",
        ],
    )
    def test_bad_specs_raise_fault_spec_error(self, spec):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(spec)

    def test_fault_spec_error_is_a_validation_error(self):
        # The CLI maps ValidationError-family failures to exit code 2.
        with pytest.raises(ValidationError):
            parse_fault_spec("bogus")

    def test_default_plan_covers_every_kind(self):
        assert set(FaultPlan.default().kinds) == set(FAULT_KINDS)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        def run(seed):
            injector = FaultInjector(FaultPlan.default(rate=0.5), seed=seed)
            fired = []
            for i in range(50):
                try:
                    injector.on_read(f"r{i}")
                    fired.append("ok")
                except (InjectedFaultError, DeadlineExceededError) as exc:
                    fired.append(type(exc).__name__)
            return fired, dict(injector.fired)

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_max_count_caps_without_perturbing_other_kinds(self):
        # Same seed, one plan capped: the uncapped kind's schedule must
        # not shift (the capped rule still draws its variate).
        def malformed_pages(truncate_rule):
            plan = FaultPlan((truncate_rule, FaultRule("malformed_block", 0.3)))
            injector = FaultInjector(plan, seed=5)
            hits, prev = [], 0
            for i in range(40):
                injector.mangle_page(page(6, start=1 + 6 * i))
                if injector.fired["malformed_block"] > prev:
                    hits.append(i)
                    prev = injector.fired["malformed_block"]
            return injector, hits

        uncapped, hits_uncapped = malformed_pages(FaultRule("truncate_page", 1.0))
        capped, hits_capped = malformed_pages(
            FaultRule("truncate_page", 1.0, max_count=2)
        )
        assert hits_uncapped == hits_capped
        assert capped.fired["truncate_page"] == 2
        assert uncapped.fired["truncate_page"] == 40


class TestEachKindFires:
    def test_read_error_and_timeout(self):
        injector = FaultInjector(
            FaultPlan((FaultRule("read_error", 1.0),)), seed=1
        )
        with pytest.raises(InjectedFaultError):
            injector.on_read("x")
        injector = FaultInjector(FaultPlan((FaultRule("timeout", 1.0),)), seed=1)
        with pytest.raises(DeadlineExceededError):
            injector.on_read("x")

    def test_truncate_keeps_a_prefix(self):
        injector = FaultInjector(FaultPlan((FaultRule("truncate_page", 1.0),)), seed=1)
        mangled = injector.mangle_page(page(8))
        assert mangled == page(8)[:4]

    def test_duplicate_appends_leading_rows(self):
        injector = FaultInjector(FaultPlan((FaultRule("duplicate_page", 1.0),)), seed=1)
        mangled = injector.mangle_page(page(8))
        assert mangled == page(8) + page(8)[:2]

    def test_reorder_permutes_without_loss(self):
        injector = FaultInjector(FaultPlan((FaultRule("reorder_page", 1.0),)), seed=1)
        mangled = injector.mangle_page(page(8))
        assert sorted(b.height for b in mangled) == [b.height for b in page(8)]
        assert mangled != page(8)

    def test_malformed_block_changes_exactly_one_row(self):
        injector = FaultInjector(
            FaultPlan((FaultRule("malformed_block", 1.0),)), seed=1
        )
        original = page(8)
        mangled = injector.mangle_page(list(original))
        assert sum(a != b for a, b in zip(original, mangled)) == 1

    def test_first_row_of_first_page_never_gets_timestamp_regression(self):
        # A regressed timestamp on the extract's very first row is
        # undetectable; the fault model substitutes height corruption.
        injector = FaultInjector(
            FaultPlan((FaultRule("malformed_block", 1.0),)), seed=0
        )
        for trial in range(30):
            mangled = injector.mangle_page(page(1), page_index=0)
            bad = mangled[0]
            assert bad.timestamp == page(1)[0].timestamp

    def test_corrupt_file_flips_one_byte(self, tmp_path):
        target = tmp_path / "blob.bin"
        payload = bytes(range(256)) * 8
        target.write_bytes(payload)
        offset = corrupt_file_bytes(target)
        corrupted = target.read_bytes()
        assert corrupted != payload
        assert len(corrupted) == len(payload)
        assert corrupted[offset] == payload[offset] ^ 0xFF

    def test_injector_corrupt_file_respects_schedule(self, tmp_path):
        target = tmp_path / "blob.bin"
        target.write_bytes(b"abcdefgh" * 64)
        never = FaultInjector(FaultPlan((FaultRule("corrupt_cache", 0.0),)), seed=1)
        assert never.corrupt_file(target) is False
        always = FaultInjector(
            FaultPlan((FaultRule("corrupt_cache", 1.0, max_count=1),)), seed=1
        )
        assert always.corrupt_file(target) is True
        assert always.corrupt_file(target) is False  # capped


class TestMangleFeed:
    def test_feed_faults_drop_empty_and_duplicate(self):
        plan = FaultPlan(
            (
                FaultRule("truncate_page", 0.2),
                FaultRule("duplicate_page", 0.2),
                FaultRule("malformed_block", 0.2),
            )
        )
        feed = [["a"], ["b"]] * 50
        out = list(FaultInjector(plan, seed=3).mangle_feed(feed))
        assert out != feed
        assert any(block == [] for block in out)  # the monitor crash vector
