"""Property-based tests for window generators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.windows.fixed import FixedBlockWindows
from repro.windows.sliding import SlidingBlockWindows, sliding_window_count

sizes = st.integers(min_value=1, max_value=500)
totals = st.integers(min_value=0, max_value=10_000)


@st.composite
def size_step_pairs(draw):
    size = draw(st.integers(min_value=1, max_value=500))
    step = draw(st.integers(min_value=1, max_value=size))
    return size, step


class TestSlidingWindowProperties:
    @given(totals, size_step_pairs())
    def test_count_matches_equation_five(self, n_blocks, size_step):
        size, step = size_step
        windows = SlidingBlockWindows(size, step).generate(n_blocks)
        assert len(windows) == sliding_window_count(n_blocks, size, step)

    @given(totals, size_step_pairs())
    def test_windows_inside_chain(self, n_blocks, size_step):
        size, step = size_step
        for window in SlidingBlockWindows(size, step).generate(n_blocks):
            assert 0 <= window.start_block
            assert window.stop_block <= n_blocks
            assert window.size == size

    @given(totals, size_step_pairs())
    def test_consecutive_overlap_constant(self, n_blocks, size_step):
        size, step = size_step
        windows = SlidingBlockWindows(size, step).generate(n_blocks)
        for a, b in zip(windows, windows[1:]):
            assert b.start_block - a.start_block == step
            assert a.overlap(b) == size - step

    @given(totals, sizes)
    def test_step_equals_size_matches_fixed(self, n_blocks, size):
        sliding = SlidingBlockWindows(size, size).generate(n_blocks)
        fixed = FixedBlockWindows(size).generate(n_blocks)
        assert [(w.start_block, w.stop_block) for w in sliding] == [
            (w.start_block, w.stop_block) for w in fixed
        ]

    @given(totals, size_step_pairs())
    @settings(max_examples=60)
    def test_every_block_between_first_and_last_window_covered(self, n_blocks, size_step):
        size, step = size_step
        windows = SlidingBlockWindows(size, step).generate(n_blocks)
        if not windows:
            return
        covered = set()
        for window in windows:
            covered.update(range(window.start_block, window.stop_block))
        # Coverage is contiguous from 0 to the last window's end (step <= size).
        assert covered == set(range(0, windows[-1].stop_block))

    @given(totals, size_step_pairs())
    def test_halving_step_roughly_doubles_count(self, n_blocks, size_step):
        size, step = size_step
        if step < 2 or n_blocks < size:
            return
        full = sliding_window_count(n_blocks, size, step)
        halved = sliding_window_count(n_blocks, size, step // 2)
        assert halved >= 2 * full - 2
