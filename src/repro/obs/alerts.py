"""Stateful alerting: pending → firing → resolved, with pluggable sinks.

The streaming monitor's original threshold alerts were stateless — every
evaluation that crossed a bound printed a line, so a metric hovering at a
threshold paged on every window.  This module is the stateful engine the
paper's "watch decentralization live" story needs:

* :class:`AlertRule` — a named condition over the latest metric values
  (``below``/``above`` thresholds with a hysteresis band, or an arbitrary
  ``check`` callable — the SLO engine compiles burn-rate breaches into
  these),
* :class:`AlertManager` — one instance per rule, walked through
  ``pending`` (condition holds, waiting out ``for_duration``) →
  ``firing`` (sinks notified once, then deduplicated) → ``resolved``
  (condition clear of the hysteresis band for ``keep_for`` seconds),
* sinks — structured log lines, an append-only JSONL file, and a webhook
  POST wrapped in the PR 4 retry policy, and
* :class:`AnomalyDetector` — an EWMA mean/variance z-score detector that
  flags regime shifts (the Jan-14-2019 BTC day) without any configured
  threshold.

Everything is clock-injectable, so lifecycle tests drive transitions on a
:class:`~repro.resilience.retry.ManualClock`.
"""

from __future__ import annotations

import json
import logging
import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.errors import ValidationError

logger = logging.getLogger(__name__)

#: Alert lifecycle states.
PENDING = "pending"
FIRING = "firing"
RESOLVED = "resolved"

#: Events kept in the manager's in-memory history ring.
_HISTORY_CAP = 512


@dataclass(frozen=True)
class AlertRule:
    """One named alert condition.

    Threshold form: give ``metric`` plus ``below`` and/or ``above`` — the
    rule triggers while the latest value crosses either bound and only
    *clears* once the value is back beyond the bound by ``hysteresis``
    (so a value dithering on the line cannot flap).  Check form: give
    ``check``, a callable over the evaluation's value mapping returning
    ``(triggered, value)`` or ``None`` for "no data" — SLO burn-rate and
    anomaly rules use this.

    ``for_duration`` is how long the condition must hold before the alert
    fires (pending); ``keep_for`` how long it must stay clear before the
    alert resolves.
    """

    name: str
    metric: str | None = None
    below: float | None = None
    above: float | None = None
    check: Callable[[Mapping[str, float]], tuple[bool, float] | None] | None = None
    for_duration: float = 0.0
    keep_for: float = 0.0
    hysteresis: float = 0.0
    severity: str = "warning"
    labels: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.check is None:
            if self.metric is None or (self.below is None and self.above is None):
                raise ValidationError(
                    f"rule {self.name!r} needs a check callable, or a metric "
                    "with at least one of below/above"
                )
        elif self.metric is not None or self.below is not None or self.above is not None:
            raise ValidationError(
                f"rule {self.name!r} mixes a check callable with thresholds"
            )
        if self.for_duration < 0 or self.keep_for < 0 or self.hysteresis < 0:
            raise ValidationError(
                f"rule {self.name!r}: durations and hysteresis must be >= 0"
            )

    def evaluate(self, values: Mapping[str, float]) -> tuple[bool, bool, float] | None:
        """``(triggered, cleared, value)``, or ``None`` when there is no data.

        ``triggered`` means the raw condition holds; ``cleared`` means the
        value is safely outside the hysteresis band (an alert may be
        neither — in the band — which holds a firing alert open).
        """
        if self.check is not None:
            result = self.check(values)
            if result is None:
                return None
            triggered, value = result
            return bool(triggered), not triggered, float(value)
        value = values.get(self.metric)
        if value is None:
            return None
        triggered = (self.below is not None and value < self.below) or (
            self.above is not None and value > self.above
        )
        cleared = not triggered
        if cleared and self.hysteresis:
            if self.below is not None and value < self.below + self.hysteresis:
                cleared = False
            if self.above is not None and value > self.above - self.hysteresis:
                cleared = False
        return triggered, cleared, float(value)

    def describe(self, value: float) -> str:
        """A one-line human condition summary for event messages."""
        if self.check is not None:
            return f"{self.name}: value={value:.4g}"
        parts = []
        if self.below is not None:
            parts.append(f"below {self.below:g}")
        if self.above is not None:
            parts.append(f"above {self.above:g}")
        return f"{self.metric}={value:.4f} ({' or '.join(parts)})"


@dataclass(frozen=True)
class AlertEvent:
    """One lifecycle transition, as delivered to every sink."""

    ts: float
    rule: str
    state: str
    value: float
    severity: str
    message: str
    labels: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "ts": self.ts,
            "rule": self.rule,
            "state": self.state,
            "value": self.value,
            "severity": self.severity,
            "message": self.message,
            "labels": dict(self.labels),
        }


def format_alert_event(event: Mapping) -> str:
    """One human-readable line per event (used by ``repro alerts``)."""
    ts = float(event.get("ts", 0.0))
    clock = time.strftime("%H:%M:%S", time.gmtime(ts)) if ts > 1e6 else f"t={ts:g}s"
    state = str(event.get("state", "?")).upper()
    return (
        f"{clock} {state:<8s} {event.get('rule', '?')} "
        f"[{event.get('severity', '?')}] {event.get('message', '')}"
    )


class AlertSink:
    """Interface: receives every lifecycle event; must never raise."""

    def emit(self, event: AlertEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class LogSink(AlertSink):
    """Structured log lines (WARNING while firing, INFO otherwise)."""

    def emit(self, event: AlertEvent) -> None:
        level = logging.WARNING if event.state == FIRING else logging.INFO
        logger.log(
            level,
            "alert %s: %s (%s)",
            event.state, event.rule, event.message,
            extra={"alert_rule": event.rule, "alert_state": event.state,
                   "alert_value": event.value},
        )


class JSONLSink(AlertSink):
    """Append one JSON object per event to a file (the tailable alert log)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()

    def emit(self, event: AlertEvent) -> None:
        line = json.dumps(event.as_dict(), sort_keys=False)
        try:
            with self._lock, open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
        except OSError as exc:
            logger.warning("alert JSONL sink failed for %s: %s", self.path, exc)


class WebhookSink(AlertSink):
    """POST each event as JSON to a URL, retried under a PR 4 policy.

    Delivery failures are logged and counted
    (``alerts.sink_errors_total``), never raised — a dead webhook must
    not take the monitor down with it.
    """

    def __init__(self, url: str, retry_policy=None, clock=None,
                 timeout: float = 3.0) -> None:
        self.url = url
        self.timeout = timeout
        self._retry_policy = retry_policy
        self._clock = clock

    def _post(self, payload: bytes) -> None:
        import urllib.request

        request = urllib.request.Request(
            self.url, data=payload,
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with urllib.request.urlopen(request, timeout=self.timeout):
            pass

    def emit(self, event: AlertEvent) -> None:
        from repro import obs
        from repro.errors import ReproError
        from repro.resilience.retry import retry_call

        payload = json.dumps(event.as_dict()).encode("utf-8")
        try:
            retry_call(
                lambda: self._post(payload),
                policy=self._retry_policy,
                name=f"webhook:{self.url}",
                clock=self._clock,
            )
        except (ReproError, OSError) as exc:
            obs.get_tracer().metrics.counter(
                "alerts.sink_errors_total",
                help="Alert sink deliveries that failed after retries.",
            ).inc()
            logger.warning("alert webhook %s failed: %s", self.url, exc)


class _Instance:
    """Mutable per-rule lifecycle state inside the manager."""

    __slots__ = ("rule", "state", "value", "since", "fired_at", "resolve_since")

    def __init__(self, rule: AlertRule, state: str, value: float, now: float) -> None:
        self.rule = rule
        self.state = state
        self.value = value
        self.since = now
        self.fired_at: float | None = None
        self.resolve_since: float | None = None

    def as_dict(self) -> dict:
        return {
            "rule": self.rule.name,
            "state": self.state,
            "value": self.value,
            "since": self.since,
            "fired_at": self.fired_at,
            "severity": self.rule.severity,
            "labels": dict(self.rule.labels),
        }


class AlertManager:
    """Walks rules through the alert lifecycle and fans events to sinks.

    >>> from repro.resilience.retry import ManualClock
    >>> clock = ManualClock()
    >>> manager = AlertManager(clock=clock)
    >>> manager.add_rule(AlertRule("low-nakamoto", metric="nakamoto", below=3))
    >>> [e.state for e in manager.evaluate({"nakamoto": 2.0})]
    ['firing']
    >>> manager.evaluate({"nakamoto": 2.0})   # deduplicated while active
    []
    >>> [e.state for e in manager.evaluate({"nakamoto": 5.0})]
    ['resolved']
    """

    def __init__(
        self,
        sinks: Sequence[AlertSink] = (),
        clock=None,
        registry=None,
    ) -> None:
        self._lock = threading.RLock()
        self._rules: list[AlertRule] = []
        self._sinks: list[AlertSink] = list(sinks)
        self._instances: dict[str, _Instance] = {}
        self._history: deque[dict] = deque(maxlen=_HISTORY_CAP)
        self.fired_total = 0
        self.resolved_total = 0
        if clock is None:
            self._now: Callable[[], float] = time.time
        else:
            self._now = getattr(clock, "monotonic", clock)
        self._registry = registry

    def add_rule(self, rule: AlertRule) -> None:
        """Register a rule; names must be unique (the dedup key)."""
        with self._lock:
            if any(existing.name == rule.name for existing in self._rules):
                raise ValidationError(f"duplicate alert rule {rule.name!r}")
            self._rules.append(rule)

    def add_sink(self, sink: AlertSink) -> None:
        """Attach another delivery sink."""
        with self._lock:
            self._sinks.append(sink)

    @property
    def rules(self) -> tuple[AlertRule, ...]:
        with self._lock:
            return tuple(self._rules)

    # -- evaluation -----------------------------------------------------------

    def evaluate(
        self, values: Mapping[str, float], now: float | None = None
    ) -> list[AlertEvent]:
        """Evaluate every rule against ``values``; returns emitted events."""
        events: list[AlertEvent] = []
        with self._lock:
            now = self._now() if now is None else float(now)
            for rule in self._rules:
                result = rule.evaluate(values)
                if result is None:
                    continue  # no data: hold current state
                triggered, cleared, value = result
                instance = self._instances.get(rule.name)
                if triggered:
                    if instance is None:
                        instance = _Instance(rule, PENDING, value, now)
                        self._instances[rule.name] = instance
                        if rule.for_duration > 0:
                            events.append(self._transition(instance, PENDING, value, now))
                        else:
                            events.append(self._fire(instance, value, now))
                    elif instance.state == PENDING:
                        instance.value = value
                        if now - instance.since >= rule.for_duration:
                            events.append(self._fire(instance, value, now))
                    else:  # already firing: dedup, refresh value
                        instance.value = value
                        instance.resolve_since = None
                else:
                    if instance is None:
                        continue
                    if instance.state == PENDING:
                        # Never fired: silently drop back to inactive.
                        del self._instances[rule.name]
                        continue
                    if not cleared:
                        # Inside the hysteresis band: hold the alert open.
                        instance.value = value
                        instance.resolve_since = None
                        continue
                    if instance.resolve_since is None:
                        instance.resolve_since = now
                    if now - instance.resolve_since >= rule.keep_for:
                        events.append(self._resolve(instance, value, now))
        for event in events:
            self._deliver(event)
        return events

    def _transition(self, instance: _Instance, state: str, value: float,
                    now: float) -> AlertEvent:
        instance.state = state
        instance.value = value
        event = AlertEvent(
            ts=now,
            rule=instance.rule.name,
            state=state,
            value=value,
            severity=instance.rule.severity,
            message=instance.rule.describe(value),
            labels=dict(instance.rule.labels),
        )
        self._history.append(event.as_dict())
        return event

    def _fire(self, instance: _Instance, value: float, now: float) -> AlertEvent:
        instance.fired_at = now
        instance.resolve_since = None
        self.fired_total += 1
        self._count("alerts.fired_total", "Alerts that entered the firing state.")
        return self._transition(instance, FIRING, value, now)

    def _resolve(self, instance: _Instance, value: float, now: float) -> AlertEvent:
        event = self._transition(instance, RESOLVED, value, now)
        del self._instances[instance.rule.name]
        self.resolved_total += 1
        self._count("alerts.resolved_total", "Alerts that resolved after firing.")
        return event

    def _count(self, name: str, help_text: str) -> None:
        registry = self._registry
        if registry is None:
            from repro import obs

            registry = obs.get_tracer().metrics
        registry.counter(name, help=help_text).inc()

    def _deliver(self, event: AlertEvent) -> None:
        for sink in list(self._sinks):
            try:
                sink.emit(event)
            except Exception as exc:  # a sink must never kill the monitor
                logger.warning("alert sink %r failed: %s", type(sink).__name__, exc)

    # -- inspection -----------------------------------------------------------

    def active(self) -> list[dict]:
        """Current pending/firing instances, sorted by rule name."""
        with self._lock:
            return [
                self._instances[name].as_dict()
                for name in sorted(self._instances)
            ]

    def history(self, limit: int = 100) -> list[dict]:
        """The most recent lifecycle events, oldest first."""
        with self._lock:
            items = list(self._history)
        return items[-limit:]

    def summary(self) -> dict:
        """The ``alerts`` section of ``/status`` and ``/api/v1/alerts``."""
        with self._lock:
            active = [
                self._instances[name].as_dict() for name in sorted(self._instances)
            ]
            return {
                "rules": len(self._rules),
                "active": active,
                "firing": sum(1 for a in active if a["state"] == FIRING),
                "fired_total": self.fired_total,
                "resolved_total": self.resolved_total,
            }


def rules_from_thresholds(
    below: Sequence[tuple[str, float]] = (),
    above: Sequence[tuple[str, float]] = (),
    for_duration: float = 0.0,
    keep_for: float = 0.0,
) -> list[AlertRule]:
    """Compile the CLI's stateless ``--alert-below/--alert-above`` specs.

    Each ``(metric, value)`` pair becomes one stateful rule on the
    manager, so the legacy flags gain the full lifecycle for free.
    """
    rules = [
        AlertRule(f"{metric}-below-{value:g}", metric=metric, below=value,
                  for_duration=for_duration, keep_for=keep_for)
        for metric, value in below
    ]
    rules += [
        AlertRule(f"{metric}-above-{value:g}", metric=metric, above=value,
                  for_duration=for_duration, keep_for=keep_for)
        for metric, value in above
    ]
    return rules


class AnomalyDetector:
    """EWMA mean/variance z-score detector over one metric stream.

    The first ``warmup`` values establish the baseline (their mean and
    sample variance); every later value is scored as
    ``z = (value - mean) / std`` *before* updating the baseline, and —
    by default — anomalous values (``|z| > threshold``) are **not**
    absorbed into the baseline, so a one-day regime shift (the paper's
    Jan-14-2019 Gini collapse) stays anomalous instead of dragging the
    mean down with it.

    >>> detector = AnomalyDetector(threshold=4.0, warmup=3)
    >>> for v in (10.0, 10.2, 9.9, 10.1, 10.0):
    ...     _ = detector.update(v)
    >>> abs(detector.update(4.0)) > 4.0
    True
    """

    def __init__(
        self,
        alpha: float = 0.3,
        threshold: float = 4.0,
        warmup: int = 5,
        min_std: float = 1e-6,
        absorb_anomalies: bool = False,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValidationError(f"alpha must be in (0, 1], got {alpha}")
        if threshold <= 0:
            raise ValidationError(f"threshold must be positive, got {threshold}")
        if warmup < 2:
            raise ValidationError(f"warmup must be >= 2, got {warmup}")
        self.alpha = alpha
        self.threshold = threshold
        self.warmup = warmup
        self.min_std = min_std
        self.absorb_anomalies = absorb_anomalies
        self._seen = 0
        self._warmup_values: list[float] = []
        self._mean = 0.0
        self._var = 0.0

    @property
    def mean(self) -> float:
        """The current baseline mean."""
        return self._mean

    @property
    def std(self) -> float:
        """The current baseline standard deviation (floored at ``min_std``)."""
        return max(math.sqrt(self._var), self.min_std)

    def update(self, value: float) -> float | None:
        """Score ``value`` against the baseline, then fold it in.

        Returns the z-score, or ``None`` while the baseline is still
        warming up.
        """
        value = float(value)
        self._seen += 1
        if self._seen <= self.warmup:
            self._warmup_values.append(value)
            if self._seen == self.warmup:
                n = len(self._warmup_values)
                self._mean = sum(self._warmup_values) / n
                self._var = sum(
                    (v - self._mean) ** 2 for v in self._warmup_values
                ) / max(n - 1, 1)
                self._warmup_values.clear()
            return None
        z = (value - self._mean) / self.std
        if self.absorb_anomalies or abs(z) <= self.threshold:
            diff = value - self._mean
            incr = self.alpha * diff
            self._mean += incr
            self._var = (1.0 - self.alpha) * (self._var + self.alpha * diff * diff)
        return z

    def is_anomaly(self, value: float) -> bool:
        """Score and flag in one call (False during warmup)."""
        z = self.update(value)
        return z is not None and abs(z) > self.threshold


def anomaly_rule(
    name: str,
    metric: str,
    detector: AnomalyDetector | None = None,
    severity: str = "warning",
    keep_for: float = 0.0,
) -> AlertRule:
    """An :class:`AlertRule` that fires on z-score anomalies in ``metric``.

    Each :meth:`AlertManager.evaluate` call feeds the metric's latest
    value through the detector once, so wire one rule per stream and
    evaluate once per window.
    """
    detector = detector or AnomalyDetector()

    def check(values: Mapping[str, float]) -> tuple[bool, float] | None:
        value = values.get(metric)
        if value is None:
            return None
        z = detector.update(value)
        if z is None:
            return None
        return abs(z) > detector.threshold, z

    return AlertRule(
        name, check=check, severity=severity, keep_for=keep_for,
        labels={"metric": metric, "kind": "anomaly"},
    )
