"""Cross-interval anomalies: what sliding windows see and fixed windows miss.

The paper's §III-A motivation: a miner dominating four consecutive days
that straddle a week boundary dilutes into two unremarkable weekly values.
The calibrated Bitcoin scenario contains exactly such an event (a pool's
share multiplied 2.6x on days 59–62).  This example measures the weekly
Nakamoto coefficient with fixed and sliding windows and shows the sliding
series flagging the event.

Run with::

    python examples/sliding_window_anomaly.py
"""

from repro import MeasurementEngine, simulate_bitcoin_2019
from repro.core import fixed_vs_sliding_gain, iqr_anomalies
from repro.viz import ascii_chart


def main() -> None:
    chain = simulate_bitcoin_2019(seed=2019)
    engine = MeasurementEngine.from_chain(chain)

    fixed = engine.measure_calendar("nakamoto", "week")
    sliding = engine.measure_sliding("nakamoto", size=1008)  # one week of blocks

    print("weekly Nakamoto, fixed windows:")
    print(ascii_chart(fixed))
    print("\nweekly Nakamoto, sliding windows (N=1008, M=504):")
    print(ascii_chart(sliding))

    gain = fixed_vs_sliding_gain(fixed, sliding, iqr_anomalies)
    print(f"\nmeasurement points: fixed={gain.n_fixed} sliding={gain.n_sliding} "
          f"(ratio {gain.point_ratio:.2f}, paper: ~2x with M = N/2)")
    print(f"IQR anomalies:      fixed={gain.anomalies_fixed} "
          f"sliding={gain.anomalies_sliding}")

    report = iqr_anomalies(sliding)
    if report:
        print("\nanomalous sliding windows:")
        for label, value in zip(report.labels, report.values):
            print(f"  {label}: nakamoto={value:.0f}")
    # Day 59-62 consolidation: block ~59*144=8496 → sliding window index ~16.
    around = sliding.slice(14, 20)
    print("\nsliding values around the day-60 consolidation:")
    for label, value in around:
        print(f"  {label}: {value:.0f}")
    print("fixed weekly values for weeks 8-9 (the event straddles them):")
    for label, value in fixed.slice(7, 10):
        print(f"  {label}: {value:.0f}")


if __name__ == "__main__":
    main()
