"""Performance — metric kernels on realistic distribution sizes.

Distribution sizes: ~90 entities is a typical Ethereum day; ~2,200 is the
full Bitcoin-2019 entity population; 50,000 stresses the O(n log n) paths.
"""

import numpy as np
import pytest

from repro.metrics.entropy import shannon_entropy
from repro.metrics.gini import gini_coefficient
from repro.metrics.hhi import herfindahl_hirschman_index
from repro.metrics.nakamoto import nakamoto_coefficient
from repro.metrics.theil import theil_index

SIZES = (90, 2_200, 50_000)


def make_distribution(size: int) -> np.ndarray:
    rng = np.random.default_rng(size)
    return rng.pareto(1.2, size=size) + 0.01


@pytest.mark.parametrize("size", SIZES)
def test_perf_gini(benchmark, size):
    values = make_distribution(size)
    result = benchmark(gini_coefficient, values)
    assert 0.0 <= result < 1.0


@pytest.mark.parametrize("size", SIZES)
def test_perf_entropy(benchmark, size):
    values = make_distribution(size)
    result = benchmark(shannon_entropy, values)
    assert result > 0.0


@pytest.mark.parametrize("size", SIZES)
def test_perf_nakamoto(benchmark, size):
    values = make_distribution(size)
    result = benchmark(nakamoto_coefficient, values)
    assert 1 <= result <= size


def test_perf_hhi(benchmark):
    values = make_distribution(2_200)
    assert 0.0 < benchmark(herfindahl_hirschman_index, values) <= 1.0


def test_perf_theil(benchmark):
    values = make_distribution(2_200)
    assert benchmark(theil_index, values) >= 0.0
