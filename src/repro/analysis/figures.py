"""Per-figure data generators.

Each ``figure_N`` function reproduces the data behind one figure of the
paper as a :class:`FigureResult`: the plotted series keyed by their legend
labels, plus the named statistics the paper quotes in prose (means,
extreme counts, window counts).  The benchmark for figure N calls the
matching generator and asserts its shape against the paper's claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Final

from repro.analysis.distribution import DistributionSlice, producer_shares
from repro.chain.pools import bitcoin_pools_2019
from repro.core.engine import MeasurementEngine
from repro.core.series import MeasurementSeries
from repro.errors import MeasurementError
from repro.util.timeutils import parse_iso_date
from repro.windows.base import TimeWindow
from repro.windows.fixed import FixedCalendarWindows
from repro.windows.sliding import sliding_window_count

GRANULARITIES: Final = ("day", "week", "month")


@dataclass(frozen=True)
class FigureResult:
    """The data behind one figure of the paper."""

    figure_id: str
    title: str
    #: Plotted series keyed by legend label (empty for Figs. 7 and 8).
    series: dict[str, MeasurementSeries] = field(default_factory=dict)
    #: Named scalar statistics the paper quotes for this figure.
    notes: dict[str, float] = field(default_factory=dict)
    #: Fig. 7 only: the two producer-share distributions.
    distributions: tuple[DistributionSlice, ...] = ()

    def series_or_raise(self, label: str) -> MeasurementSeries:
        """Fetch a series by legend label with a helpful error."""
        try:
            return self.series[label]
        except KeyError:
            raise MeasurementError(
                f"figure {self.figure_id} has no series {label!r}; "
                f"available: {sorted(self.series)}"
            ) from None


def _fixed_figure(
    engine: MeasurementEngine, metric: str, figure_id: str, chain_label: str
) -> FigureResult:
    series = {
        granularity: engine.measure_calendar(metric, granularity)
        for granularity in GRANULARITIES
    }
    notes = {
        f"mean_{granularity}": series[granularity].mean()
        for granularity in GRANULARITIES
    }
    return FigureResult(
        figure_id=figure_id,
        title=f"{metric} measured in {chain_label} using fixed windows",
        series=series,
        notes=notes,
    )


def _sliding_figure(
    engine: MeasurementEngine,
    metric: str,
    sizes: tuple[int, int, int],
    figure_id: str,
    chain_label: str,
) -> FigureResult:
    series = {f"N={size}": engine.measure_sliding(metric, size) for size in sizes}
    return _sliding_result(metric, series, sizes, figure_id, chain_label)


def _sliding_result(
    metric: str,
    series: dict[str, MeasurementSeries],
    sizes: tuple[int, int, int],
    figure_id: str,
    chain_label: str,
) -> FigureResult:
    notes = {f"mean_N={size}": series[f"N={size}"].mean() for size in sizes}
    return FigureResult(
        figure_id=figure_id,
        title=f"{metric} measured in {chain_label} using sliding windows",
        series=series,
        notes=notes,
    )


def sliding_figure_suite(
    btc: MeasurementEngine, eth: MeasurementEngine
) -> dict[str, FigureResult]:
    """Figures 9-14 from one window sweep per (chain, size).

    Instead of six independent sweeps (one per figure), each (chain, size)
    family is measured once with :meth:`MeasurementEngine.measure_sliding_many`
    evaluating all three paper metrics over shared distributions — the fast
    path the figure suite rides on.
    """
    plans = (
        (btc, "Bitcoin", (144, 1008, 4320), {"entropy": "fig9", "gini": "fig11", "nakamoto": "fig13"}),
        (eth, "Ethereum", (6000, 42000, 180000), {"entropy": "fig10", "gini": "fig12", "nakamoto": "fig14"}),
    )
    results: dict[str, FigureResult] = {}
    for engine, chain_label, sizes, figure_of in plans:
        per_metric: dict[str, dict[str, MeasurementSeries]] = {
            metric: {} for metric in figure_of
        }
        for size in sizes:
            sweep = engine.measure_sliding_many(tuple(figure_of), size)
            for metric, series in sweep.items():
                per_metric[metric][f"N={size}"] = series
        for metric, figure_id in figure_of.items():
            results[figure_id] = _sliding_result(
                metric, per_metric[metric], sizes, figure_id, chain_label
            )
    return results


def figure_1(btc: MeasurementEngine) -> FigureResult:
    """Fig. 1: Gini coefficient in Bitcoin, fixed windows."""
    return _fixed_figure(btc, "gini", "fig1", "Bitcoin")


def figure_2(btc: MeasurementEngine) -> FigureResult:
    """Fig. 2: Shannon entropy in Bitcoin, fixed windows."""
    return _fixed_figure(btc, "entropy", "fig2", "Bitcoin")


def figure_3(btc: MeasurementEngine) -> FigureResult:
    """Fig. 3: Nakamoto coefficient in Bitcoin, fixed windows."""
    return _fixed_figure(btc, "nakamoto", "fig3", "Bitcoin")


def figure_4(eth: MeasurementEngine) -> FigureResult:
    """Fig. 4: Gini coefficient in Ethereum, fixed windows."""
    return _fixed_figure(eth, "gini", "fig4", "Ethereum")


def figure_5(eth: MeasurementEngine) -> FigureResult:
    """Fig. 5: Shannon entropy in Ethereum, fixed windows."""
    return _fixed_figure(eth, "entropy", "fig5", "Ethereum")


def figure_6(eth: MeasurementEngine) -> FigureResult:
    """Fig. 6: Nakamoto coefficient in Ethereum, fixed windows."""
    return _fixed_figure(eth, "nakamoto", "fig6", "Ethereum")


def figure_7(btc: MeasurementEngine, top_k: int = 8) -> FigureResult:
    """Fig. 7: Bitcoin producer shares on 2019-12-07 vs December 2019."""
    day = parse_iso_date("2019-12-07")
    day_windows = FixedCalendarWindows("day").generate()
    month_windows = FixedCalendarWindows("month").generate()
    day_window: TimeWindow = day_windows[day]
    december: TimeWindow = month_windows[11]
    labeler = bitcoin_pools_2019().pool_of
    day_slice = producer_shares(btc, day_window, top_k=top_k, labeler=labeler)
    month_slice = producer_shares(btc, december, top_k=top_k, labeler=labeler)
    return FigureResult(
        figure_id="fig7",
        title="Distribution of blocks produced in Bitcoin within a day and a month",
        distributions=(day_slice, month_slice),
        notes={
            "day_producers": float(day_slice.n_producers),
            "month_producers": float(month_slice.n_producers),
            "day_top_share": sum(s for _, s in day_slice.top),
            "month_top_share": sum(s for _, s in month_slice.top),
        },
    )


def figure_8(btc: MeasurementEngine, eth: MeasurementEngine) -> FigureResult:
    """Fig. 8: sliding-window mechanics — Eq. 5 window counts and overlaps."""
    notes: dict[str, float] = {}
    for label, engine, sizes in (
        ("btc", btc, (144, 1008, 4320)),
        ("eth", eth, (6000, 42000, 180000)),
    ):
        total = engine.credits.n_blocks
        for size in sizes:
            step = size // 2
            notes[f"{label}_L_N={size}"] = float(
                sliding_window_count(total, size, step)
            )
            notes[f"{label}_overlap_N={size}"] = float(size - step)
    return FigureResult(
        figure_id="fig8",
        title="Sliding window mechanics (Eq. 5)",
        notes=notes,
    )


def figure_9(btc: MeasurementEngine) -> FigureResult:
    """Fig. 9: Shannon entropy in Bitcoin, sliding windows."""
    return _sliding_figure(btc, "entropy", (144, 1008, 4320), "fig9", "Bitcoin")


def figure_10(eth: MeasurementEngine) -> FigureResult:
    """Fig. 10: Shannon entropy in Ethereum, sliding windows."""
    return _sliding_figure(eth, "entropy", (6000, 42000, 180000), "fig10", "Ethereum")


def figure_11(btc: MeasurementEngine) -> FigureResult:
    """Fig. 11: Gini coefficient in Bitcoin, sliding windows."""
    return _sliding_figure(btc, "gini", (144, 1008, 4320), "fig11", "Bitcoin")


def figure_12(eth: MeasurementEngine) -> FigureResult:
    """Fig. 12: Gini coefficient in Ethereum, sliding windows."""
    return _sliding_figure(eth, "gini", (6000, 42000, 180000), "fig12", "Ethereum")


def figure_13(btc: MeasurementEngine) -> FigureResult:
    """Fig. 13: Nakamoto coefficient in Bitcoin, sliding windows."""
    return _sliding_figure(btc, "nakamoto", (144, 1008, 4320), "fig13", "Bitcoin")


def figure_14(eth: MeasurementEngine) -> FigureResult:
    """Fig. 14: Nakamoto coefficient in Ethereum, sliding windows."""
    return _sliding_figure(eth, "nakamoto", (6000, 42000, 180000), "fig14", "Ethereum")


#: Figure ids in paper order, mapped to (generator, required engines).
FIGURE_IDS: Final[dict[str, tuple[Callable[..., FigureResult], tuple[str, ...]]]] = {
    "fig1": (figure_1, ("btc",)),
    "fig2": (figure_2, ("btc",)),
    "fig3": (figure_3, ("btc",)),
    "fig4": (figure_4, ("eth",)),
    "fig5": (figure_5, ("eth",)),
    "fig6": (figure_6, ("eth",)),
    "fig7": (figure_7, ("btc",)),
    "fig8": (figure_8, ("btc", "eth")),
    "fig9": (figure_9, ("btc",)),
    "fig10": (figure_10, ("eth",)),
    "fig11": (figure_11, ("btc",)),
    "fig12": (figure_12, ("eth",)),
    "fig13": (figure_13, ("btc",)),
    "fig14": (figure_14, ("eth",)),
}
