"""Performance — cost-based SQL optimizer: index scans vs full scans.

Builds a 200k-row synthetic block table and times the same selective
equality query through an indexed engine and through an ``optimizer=False``
engine.  The headline test asserts the acceptance gate from the optimizer
PR: the indexed point lookup must be at least 5x faster end-to-end than
the full scan, with byte-identical results.  ``make bench-perf`` records
these timings in ``BENCH_pipeline.json``.
"""

import time

import numpy as np
import pytest

from repro.sql import QueryEngine
from repro.table import Table

#: Acceptance gate: indexed equality lookup vs full scan, end-to-end.
MIN_SPEEDUP = 5.0

N_ROWS = 200_000
POINT_SQL = "SELECT height, producer FROM blocks WHERE producer = 'p123'"
RANGE_SQL = "SELECT height, reward FROM blocks WHERE height BETWEEN 1000 AND 1999"


@pytest.fixture(scope="module")
def big_table() -> Table:
    return Table(
        {
            "height": np.arange(N_ROWS),
            "producer": [f"p{i % 997}" for i in range(N_ROWS)],
            "reward": np.arange(N_ROWS, dtype=float) % 13,
        }
    )


@pytest.fixture(scope="module")
def indexed_engine(big_table) -> QueryEngine:
    engine = QueryEngine({"blocks": big_table})
    engine.create_index("blocks", "producer", "hash")
    engine.create_index("blocks", "height", "sorted")
    engine.execute("ANALYZE")
    return engine


@pytest.fixture(scope="module")
def full_scan_engine(big_table) -> QueryEngine:
    return QueryEngine({"blocks": big_table}, optimizer=False)


def _best_of(fn, repeat: int = 5) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_perf_sql_indexed_point_lookup(benchmark, indexed_engine, full_scan_engine):
    """The tentpole gate: >=5x end-to-end on a selective equality query."""
    expected = full_scan_engine.execute(POINT_SQL).to_rows()
    result = benchmark(indexed_engine.execute, POINT_SQL)
    assert result.to_rows() == expected

    indexed = _best_of(lambda: indexed_engine.execute(POINT_SQL))
    full = _best_of(lambda: full_scan_engine.execute(POINT_SQL))
    speedup = full / indexed
    assert speedup >= MIN_SPEEDUP, (
        f"indexed lookup only {speedup:.1f}x faster than full scan "
        f"(indexed {indexed * 1e3:.3f}ms, full {full * 1e3:.3f}ms); "
        f"gate is {MIN_SPEEDUP:.0f}x over {N_ROWS:,} rows"
    )


def test_perf_sql_full_scan_baseline(benchmark, full_scan_engine):
    """The same query without the optimizer, for the recorded ratio."""
    result = benchmark.pedantic(
        full_scan_engine.execute, args=(POINT_SQL,), rounds=5, iterations=1
    )
    assert result.num_rows == 201


def test_perf_sql_indexed_range_scan(benchmark, indexed_engine):
    result = benchmark(indexed_engine.execute, RANGE_SQL)
    assert result.num_rows == 1_000


def test_perf_sql_analyze(benchmark, big_table):
    engine = QueryEngine({"blocks": big_table})
    summary = benchmark(engine.analyze)
    assert summary.num_rows == 3


def test_perf_sql_optimized_join(benchmark, indexed_engine, big_table):
    """Selective probe side joined against the indexed 200k-row table."""
    probe = Table({"height": np.arange(0, N_ROWS, N_ROWS // 50)})
    engine = QueryEngine({"blocks": big_table, "probe": probe})
    engine.create_index("blocks", "height", "sorted")
    engine.execute("ANALYZE")
    sql = (
        "SELECT p.height, b.producer FROM probe p "
        "JOIN blocks b ON p.height = b.height"
    )
    result = benchmark(engine.execute, sql)
    assert result.num_rows == 50
