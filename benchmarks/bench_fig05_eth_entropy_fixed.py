"""Fig. 5 — Shannon entropy measured in Ethereum using fixed windows.

Paper claims: trends at all granularities are roughly the same; most
values lie within 3.3–3.5; no abnormal values across the year.
"""

from _bench_util import report_series
from repro.analysis.figures import figure_5


def test_fig05_eth_entropy_fixed(benchmark, eth):
    figure = benchmark(figure_5, eth)
    report_series(figure.title, figure.series)

    day = figure.series["day"]
    means = [figure.series[g].mean() for g in ("day", "week", "month")]
    assert max(means) - min(means) < 0.1
    assert day.fraction_in_range(3.3, 3.6) > 0.8
    assert day.max() - day.min() < 0.6  # no abnormal values
