"""Tests for the load generator: config validation, classification,
percentiles, and a real closed/open-loop run against a live server."""

import pytest

from repro.errors import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    LoadgenConfig,
    LoadgenReport,
    OverloadConfig,
    TelemetryServer,
    format_report,
    run_loadgen,
)
from repro.serve.loadgen import percentile


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            percentile([], 50)


class TestLoadgenConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration": 0.0},
            {"duration": -1.0},
            {"clients": 0},
            {"rps": 0.0},
            {"mode": "bursty"},
            {"mode": "open"},  # open loop requires rps
            {"timeout": 0.0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            LoadgenConfig(url="http://127.0.0.1:1", **kwargs)

    def test_open_with_rps_is_valid(self):
        config = LoadgenConfig(url="http://x", mode="open", rps=10.0)
        assert config.mode == "open"


class TestReport:
    def test_ok_requires_no_errors_and_no_unhandled(self):
        assert LoadgenReport(requests=10, duration=1.0).ok()
        assert not LoadgenReport(requests=10, duration=1.0, errors=1).ok()
        assert not LoadgenReport(
            requests=10, duration=1.0, unhandled_5xx=2
        ).ok()

    def test_format_is_greppable(self):
        report = LoadgenReport(
            requests=100,
            duration=2.0,
            status_counts={200: 90, 429: 7, 503: 3},
            stale_responses=4,
            errors=0,
            unhandled_5xx=0,
            p50_ms=1.5,
            p95_ms=4.0,
            p99_ms=9.0,
        )
        text = format_report(report)
        assert "requests=100" in text
        assert "status,200 count=90" in text
        assert "status,429 count=7" in text
        assert "status,503 count=3" in text
        assert "unhandled_5xx=0" in text
        assert "p99=9.00" in text
        assert report.throughput == pytest.approx(50.0)


class TestLoadgenAgainstLiveServer:
    def test_closed_loop_collects_statuses_and_percentiles(self):
        with TelemetryServer(
            MetricsRegistry(), status_fn=lambda: {"ok": True}
        ) as server:
            report = run_loadgen(
                LoadgenConfig(
                    url=f"http://127.0.0.1:{server.port}",
                    path="/status",
                    duration=0.4,
                    clients=3,
                )
            )
        assert report.requests > 0
        assert report.errors == 0
        assert report.unhandled_5xx == 0
        assert set(report.status_counts) == {200}
        assert 0 < report.p50_ms <= report.p95_ms <= report.p99_ms

    def test_open_loop_honours_the_schedule(self):
        with TelemetryServer(
            MetricsRegistry(), status_fn=lambda: {"ok": True}
        ) as server:
            report = run_loadgen(
                LoadgenConfig(
                    url=f"http://127.0.0.1:{server.port}",
                    path="/healthz",
                    duration=0.5,
                    clients=2,
                    rps=40.0,
                    mode="open",
                )
            )
        # ~20 scheduled arrivals; allow generous slack for slow machines.
        assert 5 <= report.requests <= 40
        assert report.errors == 0

    def test_rate_limited_server_yields_429s_not_errors(self):
        registry = MetricsRegistry()
        with TelemetryServer(
            registry,
            status_fn=lambda: {"ok": True},
            overload=OverloadConfig(rate_limit=0.1, burst=1),
        ) as server:
            report = run_loadgen(
                LoadgenConfig(
                    url=f"http://127.0.0.1:{server.port}",
                    path="/metrics",
                    duration=0.3,
                    clients=2,
                )
            )
        assert report.errors == 0
        assert report.unhandled_5xx == 0
        assert report.status_counts.get(429, 0) > 0
        # Each client's single burst token got through.
        assert report.status_counts.get(200, 0) == 2

    def test_unreachable_server_counts_connection_errors(self):
        # Bind-then-close guarantees a dead port.
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            dead_port = sock.getsockname()[1]
        report = run_loadgen(
            LoadgenConfig(
                url=f"http://127.0.0.1:{dead_port}",
                duration=0.2,
                clients=2,
            )
        )
        assert report.requests == 0
        assert report.errors > 0
        assert not report.ok()
