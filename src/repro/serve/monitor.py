"""Drive a streaming monitor over a block feed while serving telemetry.

:func:`run_monitor` is the operational entry point behind
``repro monitor``: it replays a feed through a
:class:`~repro.core.streaming.StreamingMonitor`, optionally behind a
bounded :class:`~repro.serve.ingest.IngestQueue` (backpressure between
the feed and the monitor), while a :class:`~repro.serve.http.TelemetryServer`
— optionally wrapped in an :class:`~repro.serve.overload.OverloadGuard`
— answers scrapes concurrently.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro import obs
from repro.core.streaming import StreamingMonitor, ThresholdRule
from repro.errors import ResilienceError
from repro.obs.alerts import (
    AlertManager,
    AlertSink,
    LogSink,
    anomaly_rule,
    format_alert_event,
    rules_from_thresholds,
)
from repro.obs.slo import SLO, SLOEngine
from repro.obs.timeseries import TimeSeriesStore
from repro.resilience.faults import FaultInjector
from repro.resilience.supervisor import MonitorSupervisor
from repro.serve.http import TelemetryServer
from repro.serve.ingest import IngestQueue
from repro.serve.overload import OverloadConfig, OverloadGuard
from repro.serve.state import MonitorState

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class MonitorRun:
    """What :func:`run_monitor` did, for the CLI summary."""

    blocks: int
    evaluations: int
    alerts: int
    latest: dict[str, float] = field(default_factory=dict)
    port: int | None = None
    restarts: int = 0
    alerts_fired: int = 0
    alerts_resolved: int = 0
    ingest_dropped: int = 0


def run_monitor(
    feed: Iterable[Sequence[str]],
    window_size: int,
    stride: int | None = None,
    *,
    chain: str = "unknown",
    rules: Sequence[ThresholdRule] = (),
    metrics: Sequence[str] = ("gini", "entropy", "nakamoto"),
    total_blocks: int | None = None,
    serve_port: int | None = None,
    throttle: float = 0.0,
    linger: float = 0.0,
    port_file: str | None = None,
    stop_event: threading.Event | None = None,
    print_fn: Callable[[str], None] = print,
    max_restarts: int | None = None,
    restart_backoff: float = 0.05,
    injector: FaultInjector | None = None,
    quality: dict | None = None,
    history: bool = True,
    slos: Sequence[SLO] = (),
    alert_sinks: Sequence[AlertSink] = (),
    anomaly_metrics: Sequence[str] = (),
    extra_alert_rules: Sequence = (),
    alert_for: float = 0.0,
    alert_keep_for: float = 0.0,
    overload: OverloadGuard | OverloadConfig | None = None,
    ingest_queue: int | None = None,
    ingest_policy: str = "block",
) -> MonitorRun:
    """Replay ``feed`` through a streaming monitor, optionally serving scrapes.

    ``feed`` yields one block's producer names at a time.  With
    ``serve_port`` (0 = ephemeral) a :class:`TelemetryServer` answers
    ``/metrics``, ``/healthz``, ``/readyz`` and ``/status`` concurrently;
    ``port_file`` gets the bound port written to it for scripted scrapers.
    ``throttle`` sleeps that many seconds between blocks, ``linger`` keeps
    the server up that long after the feed ends (interrupted by
    ``stop_event``), and ``stop_event`` aborts ingestion between blocks —
    the CLI sets it from SIGINT/SIGTERM.

    With ``max_restarts`` the ingest loop runs under a
    :class:`~repro.resilience.supervisor.MonitorSupervisor`: a crash
    (e.g. a malformed block with no producers) flips ``/readyz`` to 503,
    the loop restarts after ``restart_backoff`` seconds on the *shared*
    feed iterator (the poison block is not replayed), and the next
    completed evaluation flips readiness back to 200.  Exhausting the
    restart budget raises :class:`~repro.errors.ResilienceError` after
    the server is torn down.  ``injector`` mangles the feed
    (:meth:`~repro.resilience.faults.FaultInjector.mangle_feed`) and
    surfaces its fired-fault counts in ``/status``; ``quality`` attaches
    an upstream ingest data-quality report there too.

    With ``history`` (the default) a :class:`~repro.obs.timeseries.TimeSeriesStore`
    is attached to the registry for the duration of the run — every
    instrument plus each streaming metric (as
    ``monitor.metric.<chain>.<name>``) records history — and a stateful
    :class:`~repro.obs.alerts.AlertManager` runs alongside the legacy
    stateless rules: the same ``rules`` compile into lifecycle rules,
    ``slos`` add burn-rate rules (:meth:`~repro.obs.slo.SLOEngine.rules`),
    ``anomaly_metrics`` add EWMA z-score rules, ``extra_alert_rules``
    attach pre-built :class:`~repro.obs.alerts.AlertRule` objects (the
    CLI uses this for progress specs like ``lag_blocks``), and
    ``alert_sinks`` receive every pending/firing/resolved transition (a
    structured-log sink is always present).  ``alert_for``/``alert_keep_for`` set the
    compiled threshold rules' fire/resolve dwell times.  The manager
    evaluates once per window evaluation (plus once at feed end, with
    lag settled) over the latest metric values extended with
    ``lag_blocks`` and ``blocks_ingested``.

    ``overload`` attaches the admission/rate-limit/shedding layer to the
    telemetry server (an :class:`~repro.serve.overload.OverloadConfig` is
    wired to the monitor's degraded state automatically).  With
    ``ingest_queue`` the feed is decoupled from the monitor by a bounded
    :class:`~repro.serve.ingest.IngestQueue` of that depth: a feeder
    thread pumps blocks in under ``ingest_policy`` (``block`` |
    ``drop-oldest`` | ``shed``) while the ingest loop consumes — queue
    depth and drop counts surface in ``/metrics`` and ``/status``.
    """
    monitor = StreamingMonitor(window_size, stride, metrics=metrics)
    for rule in rules:
        monitor.add_rule(rule)
    state = MonitorState(chain, monitor.window_size, monitor.stride, total_blocks)
    state.max_restarts = max_restarts
    if quality is not None:
        state.set_quality(quality)
    if injector is not None:
        feed = injector.mangle_feed(feed)
        state.faults_fn = lambda: dict(injector.fired)
    feed_iter = iter(feed)
    stop_event = stop_event or threading.Event()
    registry = obs.get_tracer().metrics
    alerts_total = 0
    supervisor: MonitorSupervisor | None = None
    server: TelemetryServer | None = None
    store: TimeSeriesStore | None = None
    manager: AlertManager | None = None
    engine: SLOEngine | None = None
    previous_history = registry.history
    if history:
        store = TimeSeriesStore()
        registry.set_history(store)
        manager = AlertManager(sinks=[LogSink(), *alert_sinks], registry=registry)
        for alert_rule in rules_from_thresholds(
            below=[(r.metric, r.below) for r in rules if r.below is not None],
            above=[(r.metric, r.above) for r in rules if r.above is not None],
            for_duration=alert_for,
            keep_for=alert_keep_for,
        ):
            manager.add_rule(alert_rule)
        for metric in anomaly_metrics:
            manager.add_rule(anomaly_rule(f"anomaly:{metric}", metric))
        for alert_rule in extra_alert_rules:
            manager.add_rule(alert_rule)
        if slos:
            engine = SLOEngine(slos, store)
            for alert_rule in engine.rules():
                manager.add_rule(alert_rule)
        state.alerts_fn = manager.summary
        state.timeseries_fn = store.stats
        state.sparklines_fn = lambda: {
            name: store.tail_values(f"monitor.latest.{name}", 40)
            for name in metrics
        }
        if engine is not None:
            state.slo_fn = engine.summary
    elif slos:
        raise ResilienceError("SLO evaluation requires history=True")

    if isinstance(overload, OverloadConfig):
        overload = OverloadGuard(
            overload, registry=registry, degraded_fn=state.is_degraded
        )
    if overload is not None:
        state.overload_fn = overload.snapshot

    queue: IngestQueue | None = None
    feeder: threading.Thread | None = None
    if ingest_queue is not None:
        queue = IngestQueue(
            ingest_queue,
            policy=ingest_policy,
            registry=registry,
            should_abort=stop_event.is_set,
        )
        state.ingest_fn = queue.stats

    def manager_values() -> dict[str, float]:
        """Latest metrics extended with ingest progress, for alert rules."""
        values = dict(monitor.latest())
        values["blocks_ingested"] = float(monitor.blocks_seen)
        if total_blocks is not None:
            values["lag_blocks"] = float(total_blocks - monitor.blocks_seen)
        return values

    def run_alert_engine() -> None:
        if manager is None:
            return
        for event in manager.evaluate(manager_values()):
            print_fn(format_alert_event(event.as_dict()))

    if serve_port is not None:
        server = TelemetryServer(
            registry, status_fn=state.snapshot, ready_fn=state.is_ready,
            port=serve_port, store=store, alert_manager=manager,
            overload=overload,
        )
        port = server.start()
        print_fn(f"serving telemetry on http://127.0.0.1:{port}")
        if port_file:
            with open(port_file, "w", encoding="utf-8") as fh:
                fh.write(f"{port}\n")
    blocks_gauge = registry.gauge("monitor.blocks_ingested")
    lag_gauge = registry.gauge("monitor.lag_blocks")
    push_timing = registry.timing("monitor.push_seconds")

    #: The ingest loop's source: the queue when backpressure is on (the
    #: feeder thread pumps into it), else the shared feed iterator.  Both
    #: survive supervisor restarts — iteration resumes, never replays.
    source: Iterable = queue if queue is not None else feed_iter

    def feed_pump() -> None:
        """Producer side of the backpressure queue (its own thread).

        ``throttle`` simulates a live feed, so with a queue it paces the
        *producer* — the consumer drains at full speed and the queue
        absorbs (or sheds) the mismatch.
        """
        assert queue is not None
        try:
            for item in feed_iter:
                if stop_event.is_set():
                    break
                queue.put(item)
                if throttle > 0.0:
                    stop_event.wait(throttle)
        finally:
            queue.close()

    def ingest() -> None:
        """One incarnation of the ingest loop over the shared source."""
        nonlocal alerts_total
        for producers in source:
            if stop_event.is_set():
                logger.info("monitor stopping early at block %d", monitor.blocks_seen)
                return
            start = time.perf_counter()
            alerts = monitor.push(producers)
            push_timing.observe(time.perf_counter() - start)
            blocks_gauge.set(monitor.blocks_seen)
            state.record_push(monitor.blocks_seen)
            if total_blocks is not None:
                lag_gauge.set(total_blocks - monitor.blocks_seen)
            if monitor.evaluations > state.evaluations:
                latest = monitor.latest()
                for name, value in latest.items():
                    registry.gauge(f"monitor.latest.{name}").set(value)
                    if store is not None:
                        store.record(
                            f"monitor.metric.{chain}.{name}", value, kind="metric"
                        )
                state.record_evaluation(latest, len(alerts))
                run_alert_engine()
            if alerts:
                alerts_total += len(alerts)
                registry.counter("monitor.alerts_total").inc(len(alerts))
                for alert in alerts:
                    print_fn(f"ALERT {alert}")
            if throttle > 0.0 and queue is None:
                stop_event.wait(throttle)

    try:
        if queue is not None:
            feeder = threading.Thread(
                target=feed_pump, name="repro-ingest-feeder", daemon=True
            )
            feeder.start()
        if max_restarts is None:
            ingest()
        else:
            supervisor = MonitorSupervisor(
                ingest,
                max_restarts=max_restarts,
                restart_backoff=restart_backoff,
                on_crash=state.record_crash,
                on_recover=state.record_restart,
                name=f"monitor:{chain}",
            )
            supervisor.run()
        state.mark_finished()
        # One settled pass so progress-based rules (e.g. lag_blocks) can
        # resolve before the server lingers for its final scrapes.
        run_alert_engine()
        if server is not None and linger != 0.0 and not stop_event.is_set():
            stop_event.wait(None if linger < 0 else linger)
    finally:
        if queue is not None:
            queue.close()
        if feeder is not None:
            feeder.join(timeout=5.0)
        if server is not None:
            server.stop()
        registry.set_history(previous_history)
    if supervisor is not None and supervisor.exhausted:
        raise ResilienceError(
            f"monitor ingest crashed {supervisor.crashes} time(s); "
            f"restart budget ({supervisor.max_restarts}) exhausted"
        ) from supervisor.last_error
    return MonitorRun(
        blocks=monitor.blocks_seen,
        evaluations=monitor.evaluations,
        alerts=alerts_total,
        latest=monitor.latest(),
        port=server.port if server is not None else None,
        restarts=supervisor.restarts if supervisor is not None else 0,
        alerts_fired=manager.fired_total if manager is not None else 0,
        alerts_resolved=manager.resolved_total if manager is not None else 0,
        ingest_dropped=queue.dropped_total if queue is not None else 0,
    )
