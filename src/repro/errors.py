"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subsystems define
narrower subclasses here rather than ad-hoc ``ValueError`` raises so that
failure modes are part of the public contract.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong type, range, or shape)."""


class SchemaError(ReproError):
    """A table operation referenced a missing column or mismatched dtype."""


class TableError(ReproError):
    """A table operation was structurally invalid (length mismatch, etc.)."""


class SqlError(ReproError):
    """Base class for errors raised by the mini SQL engine."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class SqlPlanError(SqlError):
    """The parsed query is semantically invalid (unknown column, bad aggregate)."""


class SqlExecutionError(SqlError):
    """The query failed while executing (type errors, division by zero, ...)."""


class ChainError(ReproError):
    """A chain structure violated an invariant (heights, timestamps, links)."""


class AttributionError(ReproError):
    """Block-producer attribution failed (empty coinbase, unknown policy)."""


class SimulationError(ReproError):
    """A simulator was configured inconsistently."""


class MetricError(ReproError):
    """A decentralization metric received an invalid distribution."""


class WindowError(ReproError):
    """A window specification was invalid (non-positive size, bad step)."""


class MeasurementError(ReproError):
    """The measurement engine was asked for an impossible combination."""


class ObservabilityError(ReproError):
    """A trace file was missing, malformed, or failed schema validation."""


class ParallelError(ReproError):
    """The sharded execution layer was misconfigured or a worker failed."""


class ServeError(ReproError):
    """The telemetry server was misused (double start, serve after close)."""


class ResilienceError(ReproError):
    """Base class for errors raised by the resilience subsystem."""


class FaultSpecError(ResilienceError, ValidationError):
    """A fault-injection spec string failed to parse or validate.

    Doubles as a :class:`ValidationError` so the CLI maps it to exit
    code 2 (argument error) rather than 1 (runtime failure).
    """


class TransientError(ResilienceError):
    """A retryable failure: the operation may succeed if tried again."""


class InjectedFaultError(TransientError):
    """A transient read error injected by the fault-injection engine."""


class DeadlineExceededError(TransientError):
    """An operation ran past its (possibly injected) timeout."""


class RetryExhaustedError(ResilienceError):
    """A retried operation kept failing until attempts or deadline ran out."""

    def __init__(self, message: str, attempts: int = 0,
                 last_error: BaseException | None = None) -> None:
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(message)


class CircuitOpenError(ResilienceError):
    """A circuit breaker is open and refusing calls to a failing dependency."""


class IntegrityError(ChainError):
    """Ingested chain data violated an integrity invariant beyond repair."""
