"""Sharded multi-core execution: process pools with deterministic merges.

The package splits embarrassingly parallel stages of the pipeline —
per-window distributions, segment partial histograms, block-range
attribution, and SQL partial aggregates — into contiguous shards executed
on a :class:`WorkerPool`, then merges the mergeable partials on the
coordinator **in shard order** so results stay byte-identical to the
serial code paths (see ``docs/PARALLELISM.md`` for the argument).

``workers="auto"`` resolves to one worker per core, which on a single-core
host is the serial fast path: no pool is created and the pre-parallel
code runs unchanged.
"""

from repro.parallel.pool import (
    AUTO,
    WorkerPool,
    in_worker,
    pool_status,
    resolve_workers,
    shard_ranges,
    worker_payload,
)

__all__ = [
    "AUTO",
    "WorkerPool",
    "in_worker",
    "pool_status",
    "resolve_workers",
    "shard_ranges",
    "worker_payload",
]
