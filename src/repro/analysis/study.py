"""The full comparison study (the paper, end to end).

:class:`DecentralizationStudy` lazily simulates (or accepts) the two 2019
chains, caches their measurement engines, generates any figure by id and
derives the paper's headline findings:

* Bitcoin is **more decentralized** (lower Gini, higher entropy, higher
  Nakamoto coefficient), and
* Ethereum is **more stable** (lower coefficient of variation), under
  every metric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.figures import FIGURE_IDS, FigureResult, sliding_figure_suite
from repro.analysis.stability import StabilityReport, stability_report
from repro.chain.chain import Chain
from repro.core.comparison import LevelComparison, compare_level
from repro.core.engine import MeasurementEngine
from repro.core.summary import summarize
from repro.errors import MeasurementError
from repro.simulation.scenarios import simulate_bitcoin_2019, simulate_ethereum_2019
from repro.table import Table, concat

#: Whether a higher value of each paper metric means *more* decentralized.
HIGHER_IS_MORE_DECENTRALIZED = {
    "gini": False,
    "entropy": True,
    "nakamoto": True,
}


@dataclass(frozen=True)
class StudyFindings:
    """The paper's two headline claims, evaluated on the simulated data."""

    level: tuple[LevelComparison, ...]
    stability: StabilityReport

    @property
    def more_decentralized(self) -> str:
        """Chain winning the majority of per-metric level comparisons."""
        wins: dict[str, int] = {}
        for comparison in self.level:
            wins[comparison.winner] = wins.get(comparison.winner, 0) + 1
        return max(wins, key=lambda chain: wins[chain])

    @property
    def more_stable(self) -> str:
        """Chain winning the majority of stability comparisons."""
        return self.stability.overall_winner


class DecentralizationStudy:
    """Owns the datasets and produces every figure and finding."""

    def __init__(
        self,
        bitcoin: Chain | None = None,
        ethereum: Chain | None = None,
        seed: int = 2019,
        policy: str = "per-address",
        workers: int | str | None = "auto",
    ) -> None:
        self._seed = seed
        self._policy = policy
        self._workers = workers
        self._chains: dict[str, Chain | None] = {"btc": bitcoin, "eth": ethereum}
        self._engines: dict[str, MeasurementEngine] = {}

    # -- data access -----------------------------------------------------------

    def chain(self, which: str) -> Chain:
        """The Bitcoin (``"btc"``) or Ethereum (``"eth"``) dataset."""
        if which not in self._chains:
            raise MeasurementError(f"unknown chain {which!r}; use 'btc' or 'eth'")
        if self._chains[which] is None:
            if which == "btc":
                self._chains[which] = simulate_bitcoin_2019(seed=self._seed)
            else:
                self._chains[which] = simulate_ethereum_2019(seed=self._seed)
        return self._chains[which]

    def engine(self, which: str) -> MeasurementEngine:
        """A cached measurement engine for one chain."""
        if which not in self._engines:
            self._engines[which] = MeasurementEngine.from_chain(
                self.chain(which), policy=self._policy, workers=self._workers
            )
        return self._engines[which]

    # -- figures ------------------------------------------------------------------

    def figure(self, figure_id: int | str) -> FigureResult:
        """Generate one figure by id (``9`` or ``"fig9"``)."""
        key = f"fig{figure_id}" if isinstance(figure_id, int) else figure_id
        if key not in FIGURE_IDS:
            raise MeasurementError(
                f"unknown figure {figure_id!r}; available: {sorted(FIGURE_IDS)}"
            )
        generator, needs = FIGURE_IDS[key]
        engines = [self.engine(which) for which in needs]
        return generator(*engines)

    def all_figures(self) -> list[FigureResult]:
        """Every figure of the paper, in order.

        The six sliding figures (9-14) come from
        :func:`~repro.analysis.figures.sliding_figure_suite`, which measures
        every paper metric over one shared sweep per (chain, size) family.
        """
        sliding = sliding_figure_suite(self.engine("btc"), self.engine("eth"))
        return [
            sliding[key] if key in sliding else self.figure(key)
            for key in FIGURE_IDS
        ]

    # -- findings ------------------------------------------------------------------

    def findings(self, granularity: str = "day") -> StudyFindings:
        """Evaluate the paper's headline claims at ``granularity``."""
        metrics = tuple(HIGHER_IS_MORE_DECENTRALIZED)
        sweep_btc = self.engine("btc").measure_calendar_many(metrics, granularity)
        sweep_eth = self.engine("eth").measure_calendar_many(metrics, granularity)
        level = [
            compare_level(sweep_btc[metric], sweep_eth[metric], higher)
            for metric, higher in HIGHER_IS_MORE_DECENTRALIZED.items()
        ]
        stability = stability_report(
            self.engine("btc"), self.engine("eth"), granularity=granularity
        )
        return StudyFindings(level=tuple(level), stability=stability)

    def summary_table(self) -> Table:
        """One row per (chain, metric, window family) with summary stats.

        Each window family is swept once for all three paper metrics.
        """
        metrics = tuple(HIGHER_IS_MORE_DECENTRALIZED)
        rows = []
        for which in ("btc", "eth"):
            engine = self.engine(which)
            sizes = (
                (144, 1008, 4320) if which == "btc" else (6000, 42000, 180000)
            )
            calendar = {
                granularity: engine.measure_calendar_many(metrics, granularity)
                for granularity in ("day", "week", "month")
            }
            sliding = {
                size: engine.measure_sliding_many(metrics, size) for size in sizes
            }
            for metric in metrics:
                for granularity in ("day", "week", "month"):
                    rows.append(_summary_row(calendar[granularity][metric]))
                for size in sizes:
                    rows.append(_summary_row(sliding[size][metric]))
        return concat(rows)


def _summary_row(series) -> Table:
    summary = summarize(series)
    record = summary.as_dict()
    return Table({key: [value] for key, value in record.items()})
