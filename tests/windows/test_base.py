"""Tests for window value types."""

import pytest

from repro.errors import WindowError
from repro.windows.base import BlockWindow, TimeWindow


class TestTimeWindow:
    def test_duration(self):
        window = TimeWindow(index=0, label="d", start_ts=100, end_ts=200)
        assert window.duration == 100

    def test_empty_interval_rejected(self):
        with pytest.raises(WindowError):
            TimeWindow(index=0, label="d", start_ts=100, end_ts=100)

    def test_inverted_interval_rejected(self):
        with pytest.raises(WindowError):
            TimeWindow(index=0, label="d", start_ts=200, end_ts=100)


class TestBlockWindow:
    def test_size(self):
        window = BlockWindow(index=0, label="w", start_block=10, stop_block=30)
        assert window.size == 20

    def test_overlap_partial(self):
        a = BlockWindow(index=0, label="a", start_block=0, stop_block=100)
        b = BlockWindow(index=1, label="b", start_block=50, stop_block=150)
        assert a.overlap(b) == 50
        assert b.overlap(a) == 50

    def test_overlap_disjoint(self):
        a = BlockWindow(index=0, label="a", start_block=0, stop_block=10)
        b = BlockWindow(index=1, label="b", start_block=10, stop_block=20)
        assert a.overlap(b) == 0

    def test_overlap_contained(self):
        outer = BlockWindow(index=0, label="o", start_block=0, stop_block=100)
        inner = BlockWindow(index=1, label="i", start_block=40, stop_block=60)
        assert outer.overlap(inner) == 20

    def test_negative_start_rejected(self):
        with pytest.raises(WindowError):
            BlockWindow(index=0, label="w", start_block=-1, stop_block=5)

    def test_empty_rejected(self):
        with pytest.raises(WindowError):
            BlockWindow(index=0, label="w", start_block=5, stop_block=5)
