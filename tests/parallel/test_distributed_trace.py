"""Acceptance tests for distributed tracing across the worker pool.

A ``workers=2`` sweep with tracing (and profiling) enabled must produce
ONE merged trace on the coordinator where every worker-side
``worker.shard`` span carries its worker pid and parents — transitively
— under the coordinator's sweep span; the written file must pass
``repro trace --validate``'s checker; and the numeric results must stay
**byte-identical** to the untraced serial run, because observability is
never allowed to change an answer.
"""

import os

import numpy as np
import pytest

from repro import obs
from repro.chain.attribution import attribute
from repro.core.engine import MeasurementEngine
from repro.obs import profile as profile_mod
from repro.obs.export import load_trace_file, validate_trace_file, write_trace
from repro.windows.base import BlockWindow

from tests.conftest import make_tiny_chain

METRICS = ("gini", "entropy", "nakamoto")


def _producers(n_blocks: int, seed: int = 7) -> list[list[str]]:
    rng = np.random.default_rng(seed)
    names = [f"m{i}" for i in range(9)]
    return [[names[int(rng.integers(0, len(names)))]] for _ in range(n_blocks)]


def _windows(n_blocks: int, size: int = 16, step: int = 8) -> list[BlockWindow]:
    return [
        BlockWindow(i, f"w{i}", lo, min(lo + size, n_blocks))
        for i, lo in enumerate(range(0, n_blocks - size + 1, step))
    ]


@pytest.fixture(scope="module")
def engine():
    chain = make_tiny_chain(_producers(96))
    return MeasurementEngine(attribute(chain, "per-address"), workers=1)


@pytest.fixture
def traced_profiled():
    """Tracing + profiling on, torn down and reset afterwards."""
    obs.enable_tracing()
    profile_mod.enable_profiling()
    try:
        yield obs.get_tracer()
    finally:
        profile_mod.disable_profiling()
        obs.disable_tracing()
        obs.get_tracer().reset()


def _ancestry(span, by_id):
    names = []
    parent = span.parent_id
    while parent is not None:
        record = by_id[parent]
        names.append(record.name)
        parent = record.parent_id
    return names


class TestDistributedSweepTrace:
    def test_worker_spans_merge_under_sweep_with_pids(
        self, engine, traced_profiled
    ):
        windows = _windows(engine.credits.n_blocks)
        engine.measure_many(METRICS, windows, workers=2)
        spans = traced_profiled.spans
        by_id = {s.span_id: s for s in spans}
        worker_spans = [s for s in spans if s.name == "worker.shard"]
        assert len(worker_spans) >= 2, "sweep must have sharded"
        for span in worker_spans:
            # Every worker span carries its (non-coordinator) worker pid...
            assert span.pid is not None
            assert span.pid != os.getpid()
            # ...and parents, transitively, under the coordinator's
            # sweep span via the per-shard gather span.
            chain = _ancestry(span, by_id)
            assert chain[0] == "parallel.shard"
            assert "engine.measure_many" in chain
            # Profiling context propagated: the worker sampled resources.
            assert "cpu" in span.attrs
            assert span.attrs["rss_kb"] > 0
        # Spans recorded by the coordinator itself have no pid override.
        sweep = next(s for s in spans if s.name == "engine.measure_many")
        assert sweep.pid is None

    def test_written_trace_validates_and_keeps_linkage(
        self, engine, traced_profiled, tmp_path
    ):
        windows = _windows(engine.credits.n_blocks)
        engine.measure_many(METRICS, windows, workers=2)
        path = tmp_path / "sweep.jsonl"
        write_trace(traced_profiled, path)
        report = validate_trace_file(path)
        assert report["n_spans"] >= len(traced_profiled.spans)
        spans, _ = load_trace_file(path)
        by_id = {s.span_id: s for s in spans}
        worker_spans = [s for s in spans if s.name == "worker.shard"]
        assert worker_spans, "worker spans must survive the round trip"
        pids = {s.pid for s in worker_spans}
        assert None not in pids and os.getpid() not in pids
        for span in worker_spans:
            assert "engine.measure_many" in _ancestry(span, by_id)

    def test_worker_timing_rebased_inside_sweep(self, engine, traced_profiled):
        # Workers run concurrently with the coordinator's gather loop, so
        # a worker span may START before its per-shard gather span opens —
        # but epoch rebasing must land every worker span inside the sweep
        # span's window (generous slack for clock granularity).
        windows = _windows(engine.credits.n_blocks)
        engine.measure_many(METRICS, windows, workers=2)
        spans = traced_profiled.spans
        sweep = next(s for s in spans if s.name == "engine.measure_many")
        for span in spans:
            if span.name != "worker.shard":
                continue
            assert span.start >= sweep.start - 1e-3
            assert span.end <= sweep.end + 1e-3


class TestObservabilityNeverChangesResults:
    def test_traced_profiled_parallel_sweep_is_byte_identical(self, engine):
        windows = _windows(engine.credits.n_blocks)
        plain = engine.measure_many(METRICS, windows, workers=2)
        serial = engine.measure_many(METRICS, windows, workers=1)
        obs.enable_tracing()
        profile_mod.enable_profiling()
        try:
            traced = engine.measure_many(METRICS, windows, workers=2)
        finally:
            profile_mod.disable_profiling()
            obs.disable_tracing()
            obs.get_tracer().reset()
        for name in METRICS:
            for other in (plain, serial):
                assert traced[name].values.tobytes() == other[name].values.tobytes()
                assert traced[name].indices.tobytes() == other[name].indices.tobytes()
                assert traced[name].labels == other[name].labels
                assert traced[name].skipped == other[name].skipped


class TestContextAndAdoption:
    """Unit-level checks of the propagation/adoption plumbing itself."""

    def test_context_none_while_disabled(self):
        assert not obs.tracing_enabled()
        assert obs.get_tracer().context() is None

    def test_context_carries_trace_id_and_profile_flag(self):
        obs.enable_tracing()
        try:
            ctx = obs.get_tracer().context()
            assert ctx["trace_id"] == obs.get_tracer().trace_id
            assert ctx["profile"] is False
            profile_mod.enable_profiling()
            assert obs.get_tracer().context()["profile"] is True
        finally:
            profile_mod.disable_profiling()
            obs.disable_tracing()
            obs.get_tracer().reset()

    def test_adopt_renumbers_and_merges_metrics(self):
        from repro.obs.tracer import Tracer

        child = Tracer()
        child.enable()
        with child.span("child.outer"):
            with child.span("child.inner"):
                pass
        child.metrics.counter("child.count").inc(3)
        envelope = child.export_state()

        parent = Tracer()
        parent.enable()
        with parent.span("parent.anchor") as anchor:
            adopted = parent.adopt(envelope, parent_span=anchor.span_id)
        assert adopted == 2
        by_name = {s.name: s for s in parent.spans}
        outer, inner = by_name["child.outer"], by_name["child.inner"]
        # Internal linkage preserved; top-level reparented under anchor.
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == by_name["parent.anchor"].span_id
        assert outer.pid == child.pid
        assert parent.metrics.counter("child.count").value == 3
