"""A single block, as the study sees it.

The measurements only need three facts per block: its height, its timestamp
and its *producers* — the coinbase output addresses for Bitcoin (usually
one, occasionally many; the paper found 2019 blocks with more than 80) or
the single miner address for Ethereum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ChainError
from repro.util.validation import ensure_block_height, ensure_producers


@dataclass(frozen=True)
class Block:
    """An immutable block record.

    ``producers`` is the ordered tuple of coinbase output addresses (Bitcoin)
    or the one-element tuple of the miner address (Ethereum).  ``tag`` holds
    the pool tag parsed from the coinbase text, when known.

    Construction validates eagerly with :class:`~repro.errors.ChainError`:
    a non-positive height or an empty coinbase address list is rejected
    here rather than surfacing as a wrong distribution in attribution.
    """

    height: int
    timestamp: int
    producers: tuple[str, ...]
    tag: str | None = field(default=None)

    def __post_init__(self) -> None:
        ensure_block_height(self.height, context="block", exc=ChainError)
        ensure_producers(self.producers, context=f"block {self.height}",
                         exc=ChainError)

    @property
    def primary_producer(self) -> str:
        """The first (payout) producer address."""
        return self.producers[0]

    @property
    def producer_count(self) -> int:
        """How many distinct addresses are credited with this block."""
        return len(self.producers)

    def is_anomalous(self, threshold: int = 10) -> bool:
        """True if this block credits at least ``threshold`` addresses.

        The paper calls out Bitcoin blocks 558,473 and 558,545, which list
        more than 80 and more than 90 coinbase addresses respectively.
        """
        return len(self.producers) >= threshold
