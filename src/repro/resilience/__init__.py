"""Resilient ingestion: fault injection, retries, and integrity repair.

Real chain data arrives over unreliable infrastructure — flaky stores,
truncated result pages, corrupt cache files, malformed blocks.  This
package makes the pipeline survive those failures and *prove* it did:

* :mod:`repro.resilience.faults` — a deterministic, seeded fault-injection
  engine that wraps the data layer with transient read errors, timeouts,
  truncated/duplicated/reordered block pages, corrupted cache bytes and
  malformed blocks on a configurable schedule.
* :mod:`repro.resilience.retry` — exponential backoff with jitter,
  deadlines and a circuit breaker, with counters exported through the
  :mod:`repro.obs` metrics registry.
* :mod:`repro.resilience.integrity` — chain integrity validation
  (gaps, duplicates, timestamp regressions, empty coinbase lists),
  quarantine + re-fetch/interpolate/drop repair, and a data-quality
  report stamped onto measurement results.
* :mod:`repro.resilience.ingest` — paged chain fetching that composes
  all three: every page read is retried, mangled pages are repaired, and
  the recovered chain is byte-identical to a clean fetch under the
  re-fetch policy (the ``repro chaos`` acceptance invariant).
* :mod:`repro.resilience.supervisor` — bounded-restart supervision for
  the streaming monitor thread, flipping ``/readyz`` to 503 while
  degraded.

The disabled path is free by construction: with no policy and no
injector, :func:`~repro.resilience.retry.retry_call` is a direct call
(see ``benchmarks/bench_perf_resilience.py`` for the <2% budget).
"""

from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    parse_fault_spec,
)
from repro.resilience.ingest import (
    FetchResult,
    chains_equal,
    fetch_chain,
    iter_pages,
)
from repro.resilience.integrity import (
    DataQualityReport,
    IntegrityIssue,
    RawBlock,
    chain_from_raw_blocks,
    raw_blocks,
    repair_blocks,
    validate_blocks,
)
from repro.resilience.retry import (
    Clock,
    CircuitBreaker,
    ManualClock,
    RetryPolicy,
    retry_call,
)
from repro.resilience.supervisor import MonitorSupervisor

__all__ = [
    "FAULT_KINDS",
    "CircuitBreaker",
    "Clock",
    "DataQualityReport",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FetchResult",
    "IntegrityIssue",
    "ManualClock",
    "MonitorSupervisor",
    "RawBlock",
    "RetryPolicy",
    "chain_from_raw_blocks",
    "chains_equal",
    "fetch_chain",
    "iter_pages",
    "parse_fault_spec",
    "raw_blocks",
    "repair_blocks",
    "retry_call",
    "validate_blocks",
]
