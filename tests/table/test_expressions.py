"""Tests for vectorized column expressions."""

import numpy as np
import pytest

from repro.errors import TableError
from repro.table import Table, col, lit


@pytest.fixture
def table() -> Table:
    return Table({"x": [1, 2, 3, 4], "y": [4.0, 3.0, 2.0, 1.0], "m": ["a", "b", "a", "c"]})


class TestComparisons:
    def test_greater(self, table):
        assert (col("x") > 2)(table).tolist() == [False, False, True, True]

    def test_equality_strings(self, table):
        assert (col("m") == "a")(table).tolist() == [True, False, True, False]

    def test_not_equal(self, table):
        assert (col("x") != 2)(table).tolist() == [True, False, True, True]

    def test_column_vs_column(self, table):
        assert (col("x") <= col("y"))(table).tolist() == [True, True, False, False]

    def test_string_ordering_rejected(self, table):
        with pytest.raises(TableError):
            (col("m") < "b")(table)


class TestArithmetic:
    def test_add_scalar(self, table):
        assert (col("x") + 10)(table).tolist() == [11, 12, 13, 14]

    def test_combined(self, table):
        out = (col("x") * 2 - col("y"))(table)
        assert out.tolist() == [-2.0, 1.0, 4.0, 7.0]

    def test_mod(self, table):
        assert (col("x") % 2)(table).tolist() == [1, 0, 1, 0]

    def test_negation(self, table):
        assert (-col("x"))(table).tolist() == [-1, -2, -3, -4]

    def test_arithmetic_on_strings_rejected(self, table):
        with pytest.raises(TableError):
            (col("m") + "suffix")(table)


class TestBooleanCombinators:
    def test_and(self, table):
        expr = (col("x") > 1) & (col("x") < 4)
        assert expr(table).tolist() == [False, True, True, False]

    def test_or(self, table):
        expr = (col("x") == 1) | (col("m") == "c")
        assert expr(table).tolist() == [True, False, False, True]

    def test_invert(self, table):
        assert (~(col("x") > 2))(table).tolist() == [True, True, False, False]


class TestPredicates:
    def test_isin_numeric(self, table):
        assert col("x").isin([1, 4])(table).tolist() == [True, False, False, True]

    def test_isin_strings(self, table):
        assert col("m").isin({"a"})(table).tolist() == [True, False, True, False]

    def test_between(self, table):
        assert col("x").between(2, 3)(table).tolist() == [False, True, True, False]


class TestLiterals:
    def test_lit_broadcasts(self, table):
        assert (lit(3) > col("x"))(table).tolist() == [True, True, False, False]

    def test_repr_is_descriptive(self):
        assert "x" in repr(col("x") > 3)
