"""Tests for validation helpers."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.util import validation as v


class TestEnsurePositive:
    def test_accepts_positive_float(self):
        assert v.ensure_positive(2.5, "x") == 2.5

    def test_accepts_positive_int(self):
        assert v.ensure_positive(3, "x") == 3.0

    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf")])
    def test_rejects_nonpositive_and_nonfinite(self, bad):
        with pytest.raises(ValidationError):
            v.ensure_positive(bad, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            v.ensure_positive(True, "x")

    def test_rejects_string(self):
        with pytest.raises(ValidationError):
            v.ensure_positive("5", "x")

    def test_error_names_parameter(self):
        with pytest.raises(ValidationError, match="window_size"):
            v.ensure_positive(-1, "window_size")


class TestEnsurePositiveInt:
    def test_accepts_int(self):
        assert v.ensure_positive_int(7, "n") == 7

    def test_accepts_numpy_int(self):
        assert v.ensure_positive_int(np.int64(7), "n") == 7

    @pytest.mark.parametrize("bad", [0, -3, 1.5, True, "7"])
    def test_rejects(self, bad):
        with pytest.raises(ValidationError):
            v.ensure_positive_int(bad, "n")


class TestEnsureProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        assert v.ensure_probability(ok, "p") == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01])
    def test_rejects_outside(self, bad):
        with pytest.raises(ValidationError):
            v.ensure_probability(bad, "p")


class TestEnsureInRange:
    def test_accepts_bounds(self):
        assert v.ensure_in_range(1.0, 1.0, 2.0, "x") == 1.0
        assert v.ensure_in_range(2.0, 1.0, 2.0, "x") == 2.0

    def test_rejects_outside(self):
        with pytest.raises(ValidationError):
            v.ensure_in_range(2.1, 1.0, 2.0, "x")


class TestEnsureNonnegativeArray:
    def test_coerces_list(self):
        out = v.ensure_nonnegative_array([1, 2, 3], "a")
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_accepts_empty(self):
        assert v.ensure_nonnegative_array([], "a").shape == (0,)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            v.ensure_nonnegative_array([1, -1], "a")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            v.ensure_nonnegative_array([1, float("nan")], "a")

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            v.ensure_nonnegative_array([[1, 2]], "a")
