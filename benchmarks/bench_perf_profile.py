"""Performance — resource-profiler overhead when profiling is disabled.

Profiling (:mod:`repro.obs.profile`) piggybacks on the tracer's span
lifecycle: enabled, every span pays a ``process_time`` + ``/proc`` RSS
sample; disabled, the tracer checks one attribute per span and the
:func:`~repro.obs.profile.profiled` decorator is a single ``if`` around
a plain call.  The contract gated here is that the *disabled* paths cost
under 3% of the BTC sliding-family sweep — profiling must be free to
leave compiled into the hot layers, exactly like tracing.
"""

import time

import pytest

from repro import obs
from repro.obs import profile

#: Maximum tolerated disabled-profiling cost, per the ISSUE budget.
OVERHEAD_BUDGET = 0.03

#: Safety factor on the measured per-sweep event count.
EVENT_MARGIN = 2.0


def _assert_all_off() -> None:
    assert not obs.tracing_enabled()
    assert not profile.profiling_enabled()


def _disabled_decorated_call_cost(calls: int = 200_000) -> float:
    """Mean seconds per call of a ``@profiled`` function, all off."""
    _assert_all_off()

    @profile.profiled("bench.noop")
    def noop() -> int:
        return 1

    start = time.perf_counter()
    for _ in range(calls):
        noop()
    return (time.perf_counter() - start) / calls


def test_perf_profiled_decorator_disabled(benchmark):
    """Microbenchmark: one ``@profiled`` call with tracing+profiling off."""
    _assert_all_off()

    @profile.profiled("bench.noop")
    def noop() -> int:
        return 1

    benchmark(noop)


def test_perf_span_with_profiler_installed_vs_not(benchmark, btc):
    """The acceptance sweep with profiling merely *available* (default)."""
    _assert_all_off()

    def full_family():
        return [btc.measure_sliding("entropy", n) for n in (144, 1_008, 4_320)]

    series = benchmark(full_family)
    assert sum(len(s) for s in series) > 800


def test_disabled_profiling_overhead_under_budget(btc):
    """Disabled-profiling cost is <3% of the BTC sliding-family sweep.

    Mirrors ``bench_perf_obs.test_disabled_overhead_under_budget``:
    count the span events one warmed sweep fires (running it once under
    tracing), bound the disabled cost as (per-call decorated cost) x
    (count, with margin), and compare against the measured sweep time —
    both sides scale with machine speed.
    """

    def full_family():
        return [btc.measure_sliding("entropy", n) for n in (144, 1_008, 4_320)]

    full_family()  # warm the sliding caches

    tracer = obs.enable_tracing()
    try:
        full_family()
        events = len(tracer.spans)
    finally:
        obs.disable_tracing()

    per_call = _disabled_decorated_call_cost()
    start = time.perf_counter()
    full_family()
    sweep_seconds = time.perf_counter() - start

    overhead = per_call * events * EVENT_MARGIN
    budget = OVERHEAD_BUDGET * sweep_seconds
    assert overhead < budget, (
        f"disabled profiling would cost {overhead * 1e6:.1f}us per sweep "
        f"({events} spans x{EVENT_MARGIN} margin x {per_call * 1e9:.0f}ns), "
        f"over the 3% budget of {budget * 1e6:.1f}us "
        f"(sweep {sweep_seconds * 1e3:.1f}ms)"
    )


def test_enabled_profiling_attaches_resource_attrs(btc):
    """Sanity: with profiling on, sweep spans carry cpu/rss samples."""
    tracer = obs.enable_tracing()
    profile.enable_profiling()
    try:
        btc.measure_sliding("entropy", 2_016, 1_008)
        sweep = next(s for s in tracer.spans if s.name == "engine.sliding_sweep")
        assert sweep.attrs["cpu"] >= 0.0
        assert sweep.attrs["rss_kb"] > 0
    finally:
        profile.disable_profiling()
        obs.disable_tracing()
