"""Tests for the command-line interface.

These drive ``repro.cli.main`` in-process.  The full-year simulations run
once per invocation, so the suite keeps CLI runs to a handful.
"""

import json

import pytest

from repro.cli import build_parser, main


def write_bench_file(path, medians):
    """A minimal pytest-benchmark JSON file: name -> headline median."""
    payload = {
        "benchmarks": [
            {"name": name, "stats": {"median": median}, "extra_info": {}}
            for name, median in medians.items()
        ]
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_measure_args(self):
        args = build_parser().parse_args(
            ["measure", "--chain", "bitcoin", "--metric", "gini", "--windows", "fixed-day"]
        )
        assert args.command == "measure"
        assert args.metric == "gini"

    def test_unknown_metric_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["measure", "--chain", "bitcoin", "--metric", "bogus", "--windows", "fixed-day"]
            )

    def test_seed_is_global(self):
        args = build_parser().parse_args(["--seed", "7", "study"])
        assert args.seed == 7


class TestCommands:
    def test_measure_fixed(self, capsys):
        code = main(
            ["measure", "--chain", "bitcoin", "--metric", "nakamoto",
             "--windows", "fixed-month"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bitcoin/nakamoto/fixed-month" in out
        assert "n=12" in out

    def test_measure_sliding_with_step(self, capsys):
        code = main(
            ["measure", "--chain", "bitcoin", "--metric", "gini",
             "--windows", "sliding-4320/2160"]
        )
        assert code == 0
        assert "sliding-4320/2160" in capsys.readouterr().out

    def test_measure_bad_windows(self, capsys):
        code = main(
            ["measure", "--chain", "bitcoin", "--metric", "gini",
             "--windows", "rolling-10"]
        )
        assert code == 2

    def test_measure_csv_output(self, tmp_path, capsys):
        out_path = tmp_path / "series.csv"
        code = main(
            ["measure", "--chain", "bitcoin", "--metric", "gini",
             "--windows", "fixed-month", "--out", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()

    def test_figure_with_export(self, tmp_path, capsys):
        code = main(["figure", "--id", "8", "--export-dir", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "fig8.json").exists()
        assert "fig8" in capsys.readouterr().out

    def test_query(self, capsys):
        code = main(
            ["query", "--chain", "bitcoin",
             "--sql", "SELECT COUNT(*) AS n FROM blocks", "--limit", "5"]
        )
        assert code == 0
        assert "54231" in capsys.readouterr().out

    def test_query_error_is_reported(self, capsys):
        code = main(
            ["query", "--chain", "bitcoin", "--sql", "SELECT nope FROM blocks"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_figure_all(self, capsys):
        code = main(["figure", "--id", "all"])
        assert code == 0
        out = capsys.readouterr().out
        for i in range(1, 15):
            assert f"fig{i}:" in out

    def test_study_prints_findings(self, capsys):
        code = main(["study"])
        assert code == 0
        out = capsys.readouterr().out
        assert "More decentralized: bitcoin" in out
        assert "More stable:        ethereum" in out

    def test_layers_summary(self, capsys):
        code = main(["layers", "--chain", "bitcoin", "--nodes", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "consensus layer" in out
        assert "network layer" in out
        assert "wealth layer" in out
        assert "network nakamoto" in out

    def test_report_writes_markdown(self, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        code = main(["report", "--out", str(out_path)])
        assert code == 0
        text = out_path.read_text(encoding="utf-8")
        assert "# Decentralization study report" in text
        assert "**More decentralized:** bitcoin" in text

    def test_simulate_writes_csv(self, tmp_path, capsys):
        out_path = tmp_path / "blocks.csv"
        code = main(["simulate", "--chain", "btc", "--out", str(out_path)])
        assert code == 0
        header = out_path.read_text().splitlines()[0]
        assert header == "height,timestamp,primary_producer,n_producers"


class TestExitCodes:
    """Every failure path returns a nonzero exit code."""

    def test_bad_sliding_size(self, capsys):
        code = main(
            ["measure", "--chain", "bitcoin", "--metric", "gini",
             "--windows", "sliding-abc"]
        )
        assert code == 2
        assert "sliding" in capsys.readouterr().err

    def test_bad_sliding_step(self, capsys):
        code = main(
            ["measure", "--chain", "bitcoin", "--metric", "gini",
             "--windows", "sliding-100/xyz"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_simulate_to_missing_directory(self, tmp_path, capsys):
        out_path = tmp_path / "no-such-dir" / "blocks.csv"
        code = main(["simulate", "--chain", "btc", "--out", str(out_path)])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_figure_id(self, capsys):
        code = main(["figure", "--id", "99"])
        assert code == 1
        assert "unknown figure" in capsys.readouterr().err

    def test_trace_subcommand_missing_file(self, tmp_path, capsys):
        code = main(["trace", str(tmp_path / "nope.json")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_trace_subcommand_invalid_file(self, tmp_path, capsys):
        path = tmp_path / "junk.jsonl"
        path.write_text("not a trace\n", encoding="utf-8")
        code = main(["trace", str(path), "--validate"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "flags",
        [
            ["--window", "0"],
            ["--stride", "-5"],
            ["--blocks", "0"],
            ["--serve", "70000"],
            ["--throttle", "-1"],
            ["--alert-below", "gini"],
            ["--alert-above", "bogus=1.0"],
            ["--max-restarts", "-1"],
            ["--inject-faults", "bogus:rate=0.5"],
        ],
    )
    def test_monitor_validation_failures(self, flags, capsys):
        code = main(["monitor", "--chain", "bitcoin", *flags])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_bench_diff_missing_file(self, tmp_path, capsys):
        old = write_bench_file(tmp_path / "old.json", {"t": 1.0})
        code = main(["bench-diff", old, str(tmp_path / "nope.json")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bench_diff_malformed_file(self, tmp_path, capsys):
        old = write_bench_file(tmp_path / "old.json", {"t": 1.0})
        bad = tmp_path / "bad.json"
        bad.write_text("{broken", encoding="utf-8")
        code = main(["bench-diff", old, str(bad)])
        assert code == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_bench_diff_fail_over_must_exceed_one(self, tmp_path, capsys):
        old = write_bench_file(tmp_path / "old.json", {"t": 1.0})
        code = main(["bench-diff", old, old, "--fail-over", "0.5"])
        assert code == 2
        assert "--fail-over" in capsys.readouterr().err


class TestTracing:
    def test_trace_flag_writes_chrome_trace(self, tmp_path, capsys):
        from repro import obs
        from repro.obs.export import validate_trace_file

        path = tmp_path / "trace.json"
        code = main(
            ["--trace", str(path), "measure", "--chain", "bitcoin",
             "--metric", "gini", "--windows", "fixed-month"]
        )
        assert code == 0
        assert not obs.tracing_enabled(), "tracing must be reset after the run"
        assert f"wrote trace" in capsys.readouterr().out
        summary = validate_trace_file(str(path))
        assert summary["format"] == "chrome"
        assert summary["n_spans"] >= 2  # cli.measure + at least one child

    def test_trace_jsonl_and_summary_subcommand(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        code = main(
            ["--trace", str(path), "measure", "--chain", "bitcoin",
             "--metric", "nakamoto", "--windows", "fixed-week"]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cli.measure" in out
        assert main(["trace", str(path), "--validate"]) == 0
        assert "valid jsonl trace" in capsys.readouterr().out


class TestMonitorCommand:
    def test_monitor_replays_blocks_and_summarizes(self, capsys):
        code = main(
            ["monitor", "--chain", "bitcoin", "--window", "144",
             "--stride", "72", "--blocks", "1000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "monitoring bitcoin: window=144 stride=72 blocks=1000" in out
        assert "monitored 1000 blocks:" in out
        assert "latest: entropy=" in out

    def test_monitor_alert_rules_fire(self, capsys):
        code = main(
            ["monitor", "--chain", "bitcoin", "--window", "144",
             "--blocks", "500", "--alert-above", "gini=0.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ALERT block " in out

    def test_monitor_survives_injected_faults_with_restarts(self, capsys):
        code = main(
            ["monitor", "--chain", "bitcoin", "--window", "144",
             "--blocks", "1000", "--inject-faults", "malformed_block:rate=0.02",
             "--max-restarts", "100"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "monitored" in out


class TestChaosCommand:
    def test_seeded_drill_recovers_byte_identically(self, capsys):
        code = main(["chaos", "--seed", "7", "--blocks", "2048",
                     "--page-size", "256"])
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos drill: bitcoin prefix of 2048 blocks" in out
        assert "faults fired:" in out
        assert "cache: corrupted partition caught by checksum and rebuilt" in out
        assert "OK: recovery byte-identical across" in out

    def test_bad_fault_spec_exits_2(self, capsys):
        code = main(["chaos", "--faults", "bogus:rate=0.5"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_bad_blocks_exits_2(self, capsys):
        assert main(["chaos", "--blocks", "0"]) == 2
        assert "must be positive" in capsys.readouterr().err

    def test_exhausted_retries_exit_1(self, capsys):
        # read_error at rate 1.0 defeats any retry budget: the drill must
        # surface RetryExhaustedError as an operational failure (exit 1),
        # not a usage error.
        code = main(["chaos", "--blocks", "256", "--page-size", "64",
                     "--faults", "read_error:rate=1.0"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_lossy_repair_policy_fails_the_drill(self, capsys):
        # Dropping quarantined blocks instead of refetching them shortens
        # the chain, so the byte-identity check must fail with exit 1.
        code = main(["chaos", "--blocks", "1024", "--page-size", "128",
                     "--repair-policy", "drop"])
        assert code == 1
        assert "FAIL" in capsys.readouterr().err


class TestMeasureFaultInjection:
    def test_measured_series_carries_on_through_faults(self, capsys):
        code = main(
            ["measure", "--chain", "bitcoin", "--metric", "gini",
             "--windows", "fixed-month",
             "--inject-faults", "read_error:rate=0.2;malformed_block:rate=0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faulted ingest:" in out
        assert "bitcoin/gini/fixed-month" in out

    def test_bad_fault_spec_exits_2(self, capsys):
        code = main(
            ["measure", "--chain", "bitcoin", "--metric", "gini",
             "--windows", "fixed-month", "--inject-faults", "nope"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestBenchDiff:
    def test_identical_runs_pass_the_gate(self, tmp_path, capsys):
        path = write_bench_file(tmp_path / "bench.json", {"t_sweep": 0.5})
        code = main(["bench-diff", path, path, "--fail-over", "1.25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "1.00x" in out
        assert "ok: no median regressed past 1.25x" in out

    def test_regression_past_tolerance_fails(self, tmp_path, capsys):
        old = write_bench_file(tmp_path / "old.json", {"t_sweep": 0.1})
        new = write_bench_file(tmp_path / "new.json", {"t_sweep": 0.2})
        code = main(["bench-diff", old, new, "--fail-over", "1.25"])
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "t_sweep at 2.00x" in captured.err

    def test_without_fail_over_the_diff_is_informational(self, tmp_path, capsys):
        old = write_bench_file(tmp_path / "old.json", {"t_sweep": 0.1})
        new = write_bench_file(tmp_path / "new.json", {"t_sweep": 0.4})
        code = main(["bench-diff", old, new])
        assert code == 0
        assert "4.00x" in capsys.readouterr().out

    def test_improvement_passes_and_is_flagged(self, tmp_path, capsys):
        old = write_bench_file(tmp_path / "old.json", {"t_sweep": 0.4})
        new = write_bench_file(tmp_path / "new.json", {"t_sweep": 0.1})
        code = main(["bench-diff", old, new, "--fail-over", "1.25"])
        assert code == 0
        assert "faster" in capsys.readouterr().out

    def test_committed_baseline_self_diff_is_clean(self, capsys):
        from pathlib import Path

        baseline = str(
            Path(__file__).resolve().parents[1]
            / "benchmarks" / "baselines" / "BENCH_pipeline_baseline.json"
        )
        code = main(["bench-diff", baseline, baseline, "--fail-over", "1.25"])
        assert code == 0
        assert "ok: no median regressed" in capsys.readouterr().out


class TestExplainAnalyze:
    def test_plan_tree_printed_with_rows_and_times(self, capsys):
        code = main(
            ["query", "--chain", "bitcoin", "--explain-analyze",
             "--sql", "SELECT primary_producer, COUNT(*) AS n FROM blocks "
                      "GROUP BY primary_producer ORDER BY n DESC LIMIT 3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Query" in out
        assert "Execute" in out
        assert "Scan blocks" in out
        assert "rows=54231" in out  # scan output cardinality
        assert "time=" in out
        assert "Limit 3" in out


class TestWorkersFlag:
    """The global --workers flag: parsing, validation, and wiring."""

    def test_default_is_auto(self):
        args = build_parser().parse_args(["study"])
        assert args.workers == "auto"

    def test_explicit_count_parses_to_int(self):
        args = build_parser().parse_args(["--workers", "4", "study"])
        assert args.workers == 4

    def test_auto_parses_to_sentinel(self):
        args = build_parser().parse_args(["--workers", "auto", "study"])
        assert args.workers == "auto"

    @pytest.mark.parametrize("bad", ["0", "-2", "two", "1.5", "AUTO"])
    def test_invalid_values_exit_2(self, bad, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--workers", bad, "study"])
        assert excinfo.value.code == 2
        assert "--workers" in capsys.readouterr().err

    def test_measure_runs_with_forced_workers(self, capsys):
        code = main(
            ["--workers", "2", "measure", "--chain", "bitcoin",
             "--metric", "gini", "--windows", "fixed-month"]
        )
        assert code == 0
        assert "n=12" in capsys.readouterr().out

    def test_query_runs_with_forced_workers(self, capsys):
        code = main(
            ["--workers", "2", "query", "--chain", "bitcoin", "--sql",
             "SELECT producer, COUNT(*) AS n FROM credits "
             "GROUP BY producer ORDER BY n DESC LIMIT 3"]
        )
        assert code == 0
        assert "'n':" in capsys.readouterr().out


class TestAnalyzeCommand:
    """The `analyze` subcommand: statistics summaries and index reports."""

    def test_analyze_table_prints_per_column_rows(self, capsys):
        code = main(["analyze", "--chain", "bitcoin", "--table", "blocks"])
        assert code == 0
        out = capsys.readouterr().out
        assert "'column': 'height'" in out
        assert "'column': 'primary_producer'" in out
        assert "'table': 'credits'" not in out

    def test_analyze_all_tables_and_index_report(self, capsys):
        code = main(
            ["analyze", "--chain", "bitcoin",
             "--index", "blocks.height:sorted", "--index", "credits.producer"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "'table': 'blocks'" in out
        assert "'table': 'credits'" in out
        assert "index blocks.height kind=sorted" in out
        assert "index credits.producer kind=hash" in out

    def test_bad_index_spec_exits_2(self, capsys):
        code = main(["analyze", "--chain", "bitcoin", "--index", "noDotSpec"])
        assert code == 2
        assert "bad --index spec" in capsys.readouterr().err


class TestQueryOptimizerFlags:
    """Optimizer-facing query flags: --explain, --analyze, --index, --disable."""

    def test_explain_prints_physical_plan_without_executing(self, capsys):
        code = main(
            ["query", "--chain", "bitcoin", "--explain",
             "--sql", "SELECT height FROM blocks WHERE height = 42"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "-- physical plan (estimated rows) --" in out
        assert "est=" in out
        assert "{'height': 42}" not in out  # plan only, no result rows

    def test_analyze_and_index_drive_an_index_scan(self, capsys):
        code = main(
            ["query", "--chain", "bitcoin", "--analyze",
             "--index", "blocks.height:sorted", "--explain-analyze",
             "--sql", "SELECT height FROM blocks WHERE height = 600000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "est=" in out
        assert "height[sorted]" in out
        assert "{'height': 600000}" in out

    def test_join_explain_shows_strategy_and_cost(self, capsys):
        code = main(
            ["query", "--chain", "bitcoin", "--analyze", "--explain",
             "--sql", "SELECT b.height FROM blocks b JOIN credits c "
                      "ON b.height = c.height"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy=" in out
        assert "cost=" in out

    def test_disable_optimizer_still_answers(self, capsys):
        code = main(
            ["query", "--chain", "bitcoin", "--disable", "optimizer",
             "--sql", "SELECT COUNT(*) AS n FROM blocks", "--limit", "5"]
        )
        assert code == 0
        assert "54231" in capsys.readouterr().out

    def test_disable_toggle_is_validated_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["query", "--chain", "bitcoin", "--disable", "warp-drive",
                 "--sql", "SELECT COUNT(*) AS n FROM blocks"]
            )
        assert excinfo.value.code == 2
        assert "--disable" in capsys.readouterr().err

    def test_bad_index_spec_exits_2(self, capsys):
        code = main(
            ["query", "--chain", "bitcoin", "--index", "nope",
             "--sql", "SELECT COUNT(*) AS n FROM blocks"]
        )
        assert code == 2
        assert "bad --index spec" in capsys.readouterr().err


class TestProfileFlag:
    def test_profile_prints_rollup_and_resets_state(self, capsys):
        from repro import obs
        from repro.obs import profile

        code = main(
            ["--profile", "measure", "--chain", "bitcoin",
             "--metric", "gini", "--windows", "fixed-month"]
        )
        assert code == 0
        # --profile without --trace must leave no global state behind.
        assert not obs.tracing_enabled()
        assert not profile.profiling_enabled()
        out = capsys.readouterr().out
        assert "profile rollup (per stage):" in out
        assert "cli.measure" in out
        assert "cpu" in out

    def test_profile_with_trace_attaches_resource_attrs(self, tmp_path, capsys):
        from repro.obs.export import load_trace_file

        path = tmp_path / "profiled.jsonl"
        code = main(
            ["--trace", str(path), "--profile", "measure", "--chain",
             "bitcoin", "--metric", "nakamoto", "--windows", "fixed-month"]
        )
        assert code == 0
        spans, _ = load_trace_file(path)
        profiled = [s for s in spans if "cpu" in s.attrs]
        assert profiled, "spans must carry resource attrs under --profile"
        assert all(s.attrs["rss_kb"] > 0 for s in profiled)


class TestTraceLenientSummary:
    def test_summary_skips_truncated_tail_with_warning(self, tmp_path, capsys):
        path = tmp_path / "cut.jsonl"
        good = {"type": "span", "id": 1, "parent": None,
                "name": "cli.measure", "start": 0.0, "dur": 0.5}
        path.write_text(
            json.dumps({"type": "meta", "format": "repro-trace", "version": 1})
            + "\n" + json.dumps(good) + "\n"
            + '{"type": "span", "id": 2, "na'  # killed mid-write
        )
        code = main(["trace", str(path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "skipped 1 corrupt record(s)" in captured.err
        assert "cli.measure" in captured.out

    def test_summary_of_fully_corrupt_file_exits_1(self, tmp_path, capsys):
        path = tmp_path / "junk.jsonl"
        path.write_text("not json at all\nstill not json\n")
        code = main(["trace", str(path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "no readable records" in captured.err


class TestTopCommand:
    def test_url_and_port_are_exclusive(self, capsys):
        code = main(["top", "--url", "http://x/status", "--port", "1"])
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_needs_url_or_port(self, capsys):
        code = main(["top"])
        assert code == 2
        assert "needs --url or --port" in capsys.readouterr().err

    def test_interval_must_be_positive(self, capsys):
        code = main(["top", "--port", "1", "--interval", "0"])
        assert code == 2
        assert "--interval" in capsys.readouterr().err

    def test_unreachable_server_exits_1(self, capsys):
        code = main(
            ["top", "--url", "http://127.0.0.1:1", "--iterations", "1"]
        )
        assert code == 1
        assert "cannot reach" in capsys.readouterr().out

    def test_renders_one_frame_from_live_server(self, capsys):
        from repro.obs.metrics import MetricsRegistry
        from repro.serve import TelemetryServer

        status = {
            "chain": "bitcoin", "uptime_seconds": 10.0, "ready": True,
            "blocks_ingested": 100, "build": {"version": "1.3.0"},
        }
        server = TelemetryServer(MetricsRegistry(), status_fn=lambda: status)
        with server:
            code = main(
                ["top", "--port", str(server.port),
                 "--iterations", "1", "--no-clear"]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro top — chain=bitcoin" in out
        assert "[ready]" in out


class TestMonitorAlertingFlags:
    def test_lag_alert_fires_and_resolves_via_jsonl_log(self, tmp_path, capsys):
        log = tmp_path / "alerts.jsonl"
        code = main(
            ["monitor", "--chain", "bitcoin", "--window", "144",
             "--blocks", "500", "--alert-above", "lag_blocks=100",
             "--alert-log", str(log)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 fired/1 resolved" in out
        assert "FIRING   lag_blocks-above-100" in out
        events = [json.loads(l) for l in log.read_text().splitlines()]
        assert [e["state"] for e in events] == ["firing", "resolved"]

    def test_slo_file_drives_burn_rate_rules(self, tmp_path, capsys):
        slo_file = tmp_path / "slo.json"
        slo_file.write_text(json.dumps({
            "slo": [{"name": "drift", "type": "metric", "target": 0.99,
                     "series": "monitor.latest.nakamoto", "op": ">=",
                     "value": 1.0}]
        }))
        code = main(
            ["monitor", "--chain", "bitcoin", "--window", "144",
             "--blocks", "500", "--slo", str(slo_file)]
        )
        assert code == 0
        assert "monitored 500 blocks" in capsys.readouterr().out

    def test_bad_slo_file_exits_2(self, tmp_path, capsys):
        slo_file = tmp_path / "slo.json"
        slo_file.write_text("{broken")
        code = main(
            ["monitor", "--chain", "bitcoin", "--blocks", "500",
             "--slo", str(slo_file)]
        )
        assert code == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_missing_slo_file_exits_2(self, tmp_path, capsys):
        code = main(
            ["monitor", "--chain", "bitcoin", "--blocks", "500",
             "--slo", str(tmp_path / "absent.toml")]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_anomaly_metric_exits_2(self, capsys):
        code = main(
            ["monitor", "--chain", "bitcoin", "--blocks", "500",
             "--anomaly", "bogus"]
        )
        assert code == 2
        assert "bogus" in capsys.readouterr().err


class TestAlertsCommand:
    def _write_log(self, path):
        events = [
            {"ts": 10.0, "rule": "lag-high", "state": "firing",
             "value": 42.0, "severity": "warning",
             "message": "lag_blocks=42.0000 (above 5)", "labels": {}},
            {"ts": 20.0, "rule": "lag-high", "state": "resolved",
             "value": 0.0, "severity": "warning",
             "message": "lag_blocks=0.0000 (above 5)", "labels": {}},
        ]
        path.write_text("".join(json.dumps(e) + "\n" for e in events))

    def test_tails_existing_log(self, tmp_path, capsys):
        log = tmp_path / "alerts.jsonl"
        self._write_log(log)
        code = main(["alerts", str(log)])
        assert code == 0
        out = capsys.readouterr().out
        assert "FIRING   lag-high" in out
        assert "RESOLVED lag-high" in out

    def test_lines_limits_initial_batch(self, tmp_path, capsys):
        log = tmp_path / "alerts.jsonl"
        self._write_log(log)
        code = main(["alerts", str(log), "--lines", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FIRING" not in out
        assert "RESOLVED lag-high" in out

    def test_missing_file_exits_1(self, tmp_path, capsys):
        code = main(["alerts", str(tmp_path / "nope.jsonl")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_negative_lines_exits_2(self, tmp_path, capsys):
        log = tmp_path / "alerts.jsonl"
        self._write_log(log)
        code = main(["alerts", str(log), "--lines", "-1"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_nonpositive_interval_exits_2(self, tmp_path, capsys):
        log = tmp_path / "alerts.jsonl"
        self._write_log(log)
        code = main(["alerts", str(log), "--interval", "0"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_lines_are_skipped_with_a_note(self, tmp_path, capsys):
        log = tmp_path / "alerts.jsonl"
        self._write_log(log)
        with log.open("a") as fh:
            fh.write("not json\n")
        code = main(["alerts", str(log)])
        assert code == 0
        captured = capsys.readouterr()
        assert "RESOLVED lag-high" in captured.out
        assert "skipped 1 malformed" in captured.err


class TestLoadgenCommand:
    def test_url_and_port_are_mutually_exclusive(self, capsys):
        code = main(["loadgen", "--url", "http://x", "--port", "80"])
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_needs_a_target(self, capsys):
        assert main(["loadgen"]) == 2
        assert "--url or --port" in capsys.readouterr().err

    def test_bad_duration_exits_2(self, capsys):
        code = main(["loadgen", "--port", "80", "--duration", "0"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_open_mode_requires_rps(self, capsys):
        code = main(["loadgen", "--port", "80", "--mode", "open"])
        assert code == 2
        assert "--rps" in capsys.readouterr().err

    def test_runs_against_a_live_server_and_prints_report(self, capsys):
        from repro.obs.metrics import MetricsRegistry
        from repro.serve import TelemetryServer

        with TelemetryServer(
            MetricsRegistry(), status_fn=lambda: {"ok": True}
        ) as server:
            code = main(
                ["loadgen", "--port", str(server.port), "--duration", "0.3",
                 "--clients", "2", "--fail-on-unhandled"]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "loadgen status,200 count=" in out
        assert "unhandled_5xx=0" in out
        assert "latency_ms p50=" in out

    def test_fail_on_unhandled_exits_1_for_dead_target(self, capsys):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            dead_port = sock.getsockname()[1]
        code = main(
            ["loadgen", "--port", str(dead_port), "--duration", "0.2",
             "--fail-on-unhandled"]
        )
        assert code == 1
        assert "connection error" in capsys.readouterr().err


class TestMonitorOverloadFlags:
    def test_bad_rate_limit_spec_exits_2(self, capsys):
        code = main(
            ["monitor", "--chain", "bitcoin", "--blocks", "500",
             "--rate-limit", "fast"]
        )
        assert code == 2
        assert "rate limit" in capsys.readouterr().err

    def test_bad_ingest_queue_exits_2(self, capsys):
        code = main(
            ["monitor", "--chain", "bitcoin", "--blocks", "500",
             "--ingest-queue", "0"]
        )
        assert code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_bad_max_inflight_exits_2(self, capsys):
        code = main(
            ["monitor", "--chain", "bitcoin", "--blocks", "500",
             "--max-inflight", "0"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_monitor_with_overload_and_ingest_queue_runs_clean(self, capsys):
        code = main(
            ["monitor", "--chain", "bitcoin", "--blocks", "500",
             "--max-inflight", "8", "--rate-limit", "1000:2000",
             "--ingest-queue", "16", "--ingest-policy", "block"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Backpressure, not loss: every block arrives despite the bound.
        assert "monitored 500 blocks" in out
        assert "dropped by ingest queue" not in out

    def test_drop_oldest_replay_reports_dropped_blocks(self, capsys):
        # An unthrottled replay outruns the consumer; drop-oldest sheds
        # the backlog and the summary says how much was lost.
        code = main(
            ["monitor", "--chain", "bitcoin", "--blocks", "500",
             "--ingest-queue", "16", "--ingest-policy", "drop-oldest"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dropped by ingest queue" in out
