"""Declarative SLOs evaluated with Google-SRE multi-window burn rates.

An SLO says "fraction of *good* events ≥ target" — e.g. "99% of requests
succeed", "99% of evaluations finish under 250ms", or the paper-flavoured
drift objective "nakamoto ≥ 3 in 99% of windows".  The error *budget* is
``1 - target``; the **burn rate** over a window is how many times faster
than budget-neutral the service is consuming it::

    burn = bad_fraction(window) / (1 - target)

Following the Google SRE workbook, each objective is alerted on
**window pairs**: a breach requires *both* the short and the long window
of a pair to burn above the pair's factor — the long window proves the
problem is real, the short window proves it is still happening (so alerts
resolve quickly once the bleeding stops).  The defaults are the classic
fast page pair (5m/1h at 14.4× — budget gone in ~2 days) and a slow
ticket pair (6h/3d at 1× — budget gone by period end).

Objectives load from a TOML or JSON file (``repro monitor --slo FILE``;
TOML needs the stdlib ``tomllib`` of Python 3.11+, JSON always works),
evaluate against the :class:`~repro.obs.timeseries.TimeSeriesStore`
histories, and compile into :class:`~repro.obs.alerts.AlertRule` checks on
the stateful :class:`~repro.obs.alerts.AlertManager` — tests drive all of
it on a :class:`~repro.resilience.retry.ManualClock`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ValidationError
from repro.obs.alerts import AlertRule
from repro.obs.timeseries import TimeSeriesStore, _resolve_clock

#: Objective kinds: availability is a bad/total counter ratio; latency and
#: metric judge each raw observation against a threshold.
SLO_TYPES = ("availability", "latency", "metric")

#: Comparison operators for metric objectives (the *good* condition).
_OPS = {
    ">=": lambda value, bound: value >= bound,
    ">": lambda value, bound: value > bound,
    "<=": lambda value, bound: value <= bound,
    "<": lambda value, bound: value < bound,
}


@dataclass(frozen=True)
class BurnWindow:
    """One short/long window pair with its burn-rate alert factor."""

    label: str
    short: float
    long: float
    factor: float
    severity: str = "warning"

    def __post_init__(self) -> None:
        if self.short <= 0 or self.long <= self.short:
            raise ValidationError(
                f"window {self.label!r}: need 0 < short < long, "
                f"got {self.short}/{self.long}"
            )
        if self.factor <= 0:
            raise ValidationError(
                f"window {self.label!r}: factor must be positive, got {self.factor}"
            )

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "short_seconds": self.short,
            "long_seconds": self.long,
            "factor": self.factor,
            "severity": self.severity,
        }


#: The Google-SRE default pairs: fast page (5m/1h @ 14.4×) and slow
#: ticket (6h/3d @ 1×).
DEFAULT_BURN_WINDOWS: tuple[BurnWindow, ...] = (
    BurnWindow("fast", 300.0, 3600.0, 14.4, severity="page"),
    BurnWindow("slow", 21600.0, 259200.0, 1.0, severity="ticket"),
)


@dataclass(frozen=True)
class SLO:
    """One declarative objective over stored series.

    ``availability`` divides the in-window increase of ``bad_series`` by
    that of ``total_series`` (both cumulative counters).  ``latency``
    counts raw observations of ``series`` above ``value`` seconds as bad.
    ``metric`` counts observations where ``value_op value`` does *not*
    hold as bad (``value_op`` states the **good** condition, so the
    paper's drift objective reads ``op=">=", value=3``).
    """

    name: str
    type: str
    target: float
    series: str | None = None
    op: str = ">="
    value: float = 0.0
    bad_series: str = "serve.http_errors_total"
    total_series: str = "serve.http_requests_total"
    windows: tuple[BurnWindow, ...] = DEFAULT_BURN_WINDOWS
    labels: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.type not in SLO_TYPES:
            raise ValidationError(
                f"SLO {self.name!r}: type must be one of {SLO_TYPES}, got {self.type!r}"
            )
        if not 0.0 < self.target < 1.0:
            raise ValidationError(
                f"SLO {self.name!r}: target must be in (0, 1), got {self.target}"
            )
        if self.type in ("latency", "metric") and not self.series:
            raise ValidationError(f"SLO {self.name!r}: {self.type} needs a series")
        if self.op not in _OPS:
            raise ValidationError(
                f"SLO {self.name!r}: op must be one of {sorted(_OPS)}, got {self.op!r}"
            )
        if not self.windows:
            raise ValidationError(f"SLO {self.name!r}: needs at least one window pair")

    @property
    def budget(self) -> float:
        """The error budget ``1 - target``."""
        return 1.0 - self.target

    def bad_fraction(self, store: TimeSeriesStore, start: float, end: float) -> float | None:
        """Fraction of bad events in ``[start, end]``, or None without data."""
        if self.type == "availability":
            bad = _counter_delta(store, self.bad_series, start, end)
            total = _counter_delta(store, self.total_series, start, end)
            if total is None or total <= 0:
                return None
            return min(max((bad or 0.0) / total, 0.0), 1.0)
        points = store.raw_points(self.series, start, end)
        if not points:
            return None
        if self.type == "latency":
            bad = sum(1 for _, v in points if v > self.value)
        else:
            good = _OPS[self.op]
            bad = sum(1 for _, v in points if not good(v, self.value))
        return bad / len(points)


def _counter_delta(store: TimeSeriesStore, name: str, start: float,
                   end: float) -> float | None:
    """In-window increase of a cumulative counter series (None: no data)."""
    points = store.raw_points(name, start, end)
    if not points:
        return None
    if len(points) == 1:
        # A single in-window sample: its value *is* the cumulative total,
        # so fall back to the last retained point before the window.
        earlier = store.raw_points(name, None, start)
        baseline = earlier[-1][1] if earlier else 0.0
        return max(points[0][1] - baseline, 0.0)
    return max(points[-1][1] - points[0][1], 0.0)


class SLOEngine:
    """Evaluates objectives against a store and compiles them into alerts.

    >>> from repro.obs.timeseries import TimeSeriesStore
    >>> store = TimeSeriesStore(clock=lambda: 3600.0)
    >>> for i in range(100):
    ...     store.record("nakamoto", 2.0 if i % 2 else 4.0, ts=3600.0 - i)
    >>> slo = SLO("drift", "metric", 0.99, series="nakamoto", op=">=", value=3)
    >>> engine = SLOEngine([slo], store, clock=lambda: 3600.0)
    >>> engine.evaluate()[0]["breached"]
    True
    """

    def __init__(self, slos: Sequence[SLO], store: TimeSeriesStore,
                 clock=None) -> None:
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate SLO names in {names}")
        self.slos = tuple(slos)
        self.store = store
        self._now = store.now if clock is None else _resolve_clock(clock)

    def _pair_burns(
        self, slo: SLO, window: BurnWindow, now: float
    ) -> tuple[float | None, float | None]:
        short = slo.bad_fraction(self.store, now - window.short, now)
        long = slo.bad_fraction(self.store, now - window.long, now)
        budget = slo.budget
        return (
            None if short is None else short / budget,
            None if long is None else long / budget,
        )

    def _pair_breached(self, short_burn: float | None, long_burn: float | None,
                       factor: float) -> bool:
        # Both windows must burn above the factor: the long window keeps
        # blips from paging, the short window lets the alert clear fast.
        return (
            short_burn is not None and long_burn is not None
            and short_burn > factor and long_burn > factor
        )

    def evaluate(self, now: float | None = None) -> list[dict]:
        """Burn-rate status of every objective (JSON-ready)."""
        now = self._now() if now is None else float(now)
        out = []
        for slo in self.slos:
            windows = []
            breached = False
            for window in slo.windows:
                short_burn, long_burn = self._pair_burns(slo, window, now)
                pair_breached = self._pair_breached(
                    short_burn, long_burn, window.factor
                )
                breached = breached or pair_breached
                windows.append({
                    **window.as_dict(),
                    "short_burn": short_burn,
                    "long_burn": long_burn,
                    "breached": pair_breached,
                })
            out.append({
                "name": slo.name,
                "type": slo.type,
                "target": slo.target,
                "budget": slo.budget,
                "breached": breached,
                "windows": windows,
            })
        return out

    def rules(self) -> list[AlertRule]:
        """One stateful :class:`AlertRule` per (objective, window pair).

        The rule's check re-evaluates its pair on the engine clock; the
        reported value is the worse of the two burn rates.
        """
        rules = []
        for slo in self.slos:
            for window in slo.windows:
                rules.append(AlertRule(
                    f"slo:{slo.name}:{window.label}",
                    check=self._make_check(slo, window),
                    severity=window.severity,
                    labels={"slo": slo.name, "window": window.label,
                            "type": slo.type, **slo.labels},
                ))
        return rules

    def _make_check(self, slo: SLO, window: BurnWindow):
        def check(values: Mapping[str, float]) -> tuple[bool, float] | None:
            now = self._now()
            short_burn, long_burn = self._pair_burns(slo, window, now)
            if short_burn is None and long_burn is None:
                return None
            worst = max(b for b in (short_burn, long_burn) if b is not None)
            return self._pair_breached(short_burn, long_burn, window.factor), worst

        return check

    def summary(self, now: float | None = None) -> dict:
        """The ``slo`` section of ``/status``."""
        statuses = self.evaluate(now)
        return {
            "objectives": len(statuses),
            "breached": [s["name"] for s in statuses if s["breached"]],
            "statuses": statuses,
        }


# -- file loading --------------------------------------------------------------


def parse_slo_config(data, source: str = "<config>") -> list[SLO]:
    """Build :class:`SLO` objects from decoded TOML/JSON data.

    Accepts either a top-level list of objective tables or a mapping with
    an ``slo`` (or ``objectives``) list.  Raises
    :class:`~repro.errors.ValidationError` on any malformed entry.
    """
    if isinstance(data, Mapping):
        entries = data.get("slo", data.get("objectives"))
        if entries is None:
            raise ValidationError(
                f"{source}: expected a top-level 'slo' (or 'objectives') list"
            )
    else:
        entries = data
    if not isinstance(entries, (list, tuple)) or not entries:
        raise ValidationError(f"{source}: needs at least one objective")
    slos = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, Mapping):
            raise ValidationError(f"{source}: objective #{index} is not a table")
        slos.append(_parse_entry(entry, f"{source}: objective #{index}"))
    names = [slo.name for slo in slos]
    if len(set(names)) != len(names):
        raise ValidationError(f"{source}: duplicate SLO names in {names}")
    return slos


_KNOWN_KEYS = {
    "name", "type", "target", "series", "op", "value",
    "bad_series", "total_series", "windows", "labels",
}


def _parse_entry(entry: Mapping, source: str) -> SLO:
    unknown = set(entry) - _KNOWN_KEYS
    if unknown:
        raise ValidationError(f"{source}: unknown keys {sorted(unknown)}")
    for key in ("name", "type", "target"):
        if key not in entry:
            raise ValidationError(f"{source}: missing required key {key!r}")
    try:
        target = float(entry["target"])
        value = float(entry.get("value", 0.0))
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{source}: non-numeric target/value: {exc}") from None
    windows = DEFAULT_BURN_WINDOWS
    if "windows" in entry:
        raw_windows = entry["windows"]
        if not isinstance(raw_windows, (list, tuple)):
            raise ValidationError(f"{source}: windows must be a list")
        try:
            windows = tuple(
                BurnWindow(
                    label=str(w.get("label", f"pair{i}")),
                    short=float(w["short"]),
                    long=float(w["long"]),
                    factor=float(w.get("factor", 1.0)),
                    severity=str(w.get("severity", "warning")),
                )
                for i, w in enumerate(raw_windows)
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"{source}: bad window pair: {exc!r}") from None
    labels = entry.get("labels", {})
    if not isinstance(labels, Mapping):
        raise ValidationError(f"{source}: labels must be a table")
    kwargs = {}
    for key in ("series", "bad_series", "total_series"):
        if key in entry:
            kwargs[key] = str(entry[key])
    return SLO(
        name=str(entry["name"]),
        type=str(entry["type"]),
        target=target,
        op=str(entry.get("op", ">=")),
        value=value,
        windows=windows,
        labels=dict(labels),
        **kwargs,
    )


def load_slo_file(path: str) -> list[SLO]:
    """Load objectives from a ``.toml`` or ``.json`` file.

    TOML requires Python 3.11+ (the stdlib ``tomllib``); JSON always
    works.  Missing files, undecodable content, and schema violations all
    raise :class:`~repro.errors.ValidationError` so the CLI can exit 2.
    """
    suffix = os.path.splitext(path)[1].lower()
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise ValidationError(f"cannot read SLO file {path}: {exc}") from None
    if suffix == ".toml":
        try:
            import tomllib
        except ImportError:
            raise ValidationError(
                f"{path}: TOML SLO files need Python 3.11+ (tomllib); "
                "use the JSON form instead"
            ) from None
        try:
            data = tomllib.loads(blob.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
            raise ValidationError(f"{path}: invalid TOML: {exc}") from None
    else:
        try:
            data = json.loads(blob.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValidationError(f"{path}: invalid JSON: {exc}") from None
    return parse_slo_config(data, source=path)
