"""Performance — telemetry serving under and without overload protection.

The overload guard is optional per server; the contract (same shape as
the tracer's in ``bench_perf_obs.py``) is that with the guard *disabled*
the per-request bookkeeping it adds is a guard-checked no-op whose cost
stays under 2% of a real request.  This file measures both halves —
the disabled-path per-request cost and live request latency — plus the
guarded fast path (rate-limit check + fresh cache hit) and a short
closed-loop ``loadgen`` burst whose p50/p95/p99 land in
``BENCH_pipeline.json`` for ``repro bench-diff`` to gate.
"""

import time
import urllib.request

from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    LoadgenConfig,
    OverloadConfig,
    OverloadGuard,
    TelemetryServer,
    run_loadgen,
)

#: Maximum tolerated disabled-path cost, as a fraction of request time.
OVERHEAD_BUDGET = 0.02


def _status_server(overload=None):
    registry = MetricsRegistry()
    return TelemetryServer(
        registry,
        status_fn=lambda: {"chain": "bench", "blocks": 4_320,
                           "metrics": {"gini": 0.41, "entropy": 3.2}},
        overload=overload,
    )


def _fetch(port: int, path: str = "/status") -> bytes:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=5.0
    ) as response:
        return response.read()


def _disabled_path_cost(calls: int = 200_000) -> float:
    """Mean seconds of the per-request bookkeeping the guard adds when
    no guard is configured: three attribute resets and one None check."""
    guard = None
    sink = []
    start = time.perf_counter()
    for _ in range(calls):
        responded = False
        extra_headers = []
        cache_key = None
        if guard is not None:  # pragma: no cover - disabled path
            sink.append((responded, extra_headers, cache_key))
    return (time.perf_counter() - start) / calls


def test_perf_serve_status_request(benchmark):
    """Microbenchmark: one GET /status with no overload guard."""
    with _status_server() as server:
        body = benchmark(_fetch, server.port)
    assert b"bench" in body


def test_perf_serve_guarded_cache_hit(benchmark):
    """Microbenchmark: one GET /status through the full guard stack
    (rate-limit check, admission slot, fresh cache hit)."""
    guard = OverloadGuard(
        OverloadConfig(
            max_inflight=64,
            rate_limit=1_000_000.0,
            burst=1_000_000,
            cache_ttl=3600.0,
        ),
        registry=MetricsRegistry(),
    )
    with _status_server(overload=guard) as server:
        _fetch(server.port)  # populate the cache: steady-state is a hit
        body = benchmark(_fetch, server.port)
    assert b"bench" in body
    assert guard.cache.snapshot()["hits"] >= 1


def test_perf_serve_loadgen_p99(benchmark):
    """Closed-loop loadgen burst; p50/p95/p99 land in extra_info.

    The benchmarked quantity is a single in-flight request during the
    burst's steady state (what bench-diff gates); the report percentiles
    ride along in the JSON for trend tracking.
    """
    with _status_server() as server:
        report = run_loadgen(
            LoadgenConfig(
                url=f"http://127.0.0.1:{server.port}",
                path="/status",
                duration=1.0,
                clients=4,
            )
        )
        body = benchmark(_fetch, server.port)
    assert b"bench" in body
    assert report.errors == 0
    assert report.unhandled_5xx == 0
    benchmark.extra_info["loadgen"] = {
        "requests": report.requests,
        "throughput_rps": round(report.throughput, 1),
        "p50_ms": report.p50_ms,
        "p95_ms": report.p95_ms,
        "p99_ms": report.p99_ms,
    }


def test_disabled_guard_overhead_under_budget():
    """Disabled-guard bookkeeping is <2% of a real request.

    Both sides are measured on this machine: the per-request cost of the
    added bookkeeping (attribute resets + None check) against the median
    of 50 live /status requests — so the 2% claim scales with hardware.
    """
    per_request_cost = _disabled_path_cost()
    with _status_server() as server:
        _fetch(server.port)  # warm the handler path
        samples = []
        for _ in range(50):
            start = time.perf_counter()
            _fetch(server.port)
            samples.append(time.perf_counter() - start)
    samples.sort()
    median_request = samples[len(samples) // 2]
    budget = OVERHEAD_BUDGET * median_request
    print(f"\n=== disabled-guard overhead ===")
    print(f"  bookkeeping: {per_request_cost * 1e9:.0f}ns/request")
    print(f"  median request: {median_request * 1e6:.0f}us; "
          f"2% budget: {budget * 1e6:.1f}us")
    assert per_request_cost < budget, (
        f"disabled-guard bookkeeping costs {per_request_cost * 1e9:.0f}ns "
        f"per request, over the 2% budget of {budget * 1e9:.0f}ns "
        f"(median request {median_request * 1e6:.0f}us)"
    )
