"""Extension bench — wealth vs production decentralization (related work [9]).

Prices every 2019 block (subsidy + heavy-tailed fees) and measures the
decentralization of *cumulative income* alongside the paper's per-window
production measurements: wealth inequality compounds over the year (Gini
rises monotonically in history), its Nakamoto coefficient matches the
production one (the same pools collect the money), and the wealth series
is far smoother than the per-window production series.
"""

import numpy as np

from _bench_util import report_series
from repro.rewards import (
    BITCOIN_REWARDS_2019,
    ETHEREUM_REWARDS_2019,
    cumulative_wealth_series,
    reward_credits,
    total_rewards_by_entity,
)


def build_and_measure(study):
    results = {}
    for which, schedule in (
        ("btc", BITCOIN_REWARDS_2019),
        ("eth", ETHEREUM_REWARDS_2019),
    ):
        credits = reward_credits(study.chain(which), schedule, seed=2019)
        results[which] = {
            "credits": credits,
            "gini": cumulative_wealth_series(credits, "gini", checkpoints=12),
            "nakamoto": cumulative_wealth_series(credits, "nakamoto", checkpoints=12),
        }
    return results


def test_extension_wealth_decentralization(benchmark, study, btc, eth):
    results = benchmark.pedantic(build_and_measure, args=(study,), rounds=1, iterations=1)
    for which in ("btc", "eth"):
        report_series(
            f"cumulative wealth ({which})",
            {m: results[which][m] for m in ("gini", "nakamoto")},
        )
        top = total_rewards_by_entity(results[which]["credits"])[:3]
        total = results[which]["credits"].total_weight
        print(
            "  top earners: "
            + ", ".join(f"{name}={weight / total:.1%}" for name, weight in top)
        )

    btc_gini = results["btc"]["gini"]
    # Wealth inequality compounds: the cumulative Gini rises through 2019.
    assert btc_gini.values[-1] > btc_gini.values[0]
    assert np.all(np.diff(btc_gini.values) > -0.02)  # near-monotone
    # The same few pools collect the money: wealth Nakamoto tracks the
    # production Nakamoto for both chains.
    assert abs(
        results["btc"]["nakamoto"].values[-1]
        - btc.measure_calendar("nakamoto", "month").mean()
    ) <= 2
    assert results["eth"]["nakamoto"].values[-1] <= 3
    # Bitcoin's wealth is more decentralized than Ethereum's, mirroring
    # the paper's production-layer headline.
    assert btc_gini.values[-1] < results["eth"]["gini"].values[-1]
