"""Tests for deterministic RNG derivation."""

from repro.util.rng import derive_rng, spawn_rngs


class TestDeriveRng:
    def test_same_seed_and_stream_reproduce(self):
        a = derive_rng(42, "draws").integers(0, 1_000_000, size=10)
        b = derive_rng(42, "draws").integers(0, 1_000_000, size=10)
        assert a.tolist() == b.tolist()

    def test_different_streams_differ(self):
        a = derive_rng(42, "draws").integers(0, 1_000_000, size=10)
        b = derive_rng(42, "timestamps").integers(0, 1_000_000, size=10)
        assert a.tolist() != b.tolist()

    def test_different_seeds_differ(self):
        a = derive_rng(1, "draws").integers(0, 1_000_000, size=10)
        b = derive_rng(2, "draws").integers(0, 1_000_000, size=10)
        assert a.tolist() != b.tolist()

    def test_stream_isolation(self):
        """Consuming one stream must not perturb another (the property that
        keeps calibration stable when new consumers are added)."""
        fresh = derive_rng(7, "b").normal(size=5)
        a = derive_rng(7, "a")
        a.normal(size=1_000)  # burn a lot of the 'a' stream
        again = derive_rng(7, "b").normal(size=5)
        assert fresh.tolist() == again.tolist()


class TestSpawnRngs:
    def test_spawns_all_streams(self):
        rngs = spawn_rngs(5, ["x", "y", "z"])
        assert set(rngs) == {"x", "y", "z"}

    def test_spawned_match_derived(self):
        spawned = spawn_rngs(5, ["x"])["x"].integers(0, 100, size=5)
        derived = derive_rng(5, "x").integers(0, 100, size=5)
        assert spawned.tolist() == derived.tolist()
