"""Streaming decentralization monitoring.

The paper motivates sliding windows with timeliness: discovering abnormal
changes as they happen, not at the end of a calendar interval.  This
module is that deployment story: a :class:`StreamingMonitor` ingests
blocks one at a time, maintains the trailing-N-blocks credit distribution
incrementally (O(producers-per-block) per push), recomputes the metrics
every ``stride`` blocks — the sliding step M — and fires alerts when a
metric crosses a configured threshold.

>>> monitor = StreamingMonitor(window_size=144, stride=72)
>>> monitor.add_rule(ThresholdRule("nakamoto", below=4))       # doctest: +SKIP
>>> for block in feed:                                         # doctest: +SKIP
...     for alert in monitor.push(block.producers):
...         page_operator(alert)
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.core.rolling import RollingHistogram
from repro.errors import MeasurementError
from repro.metrics.base import DistributionBatch, Metric, compute_batch, get_metric

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ThresholdRule:
    """Fire when a metric goes below ``below`` and/or above ``above``."""

    metric: str
    below: float | None = None
    above: float | None = None

    def __post_init__(self) -> None:
        if self.below is None and self.above is None:
            raise MeasurementError("a rule needs at least one of below/above")

    def triggered(self, value: float) -> bool:
        """True if ``value`` crosses either configured bound."""
        if self.below is not None and value < self.below:
            return True
        if self.above is not None and value > self.above:
            return True
        return False


@dataclass(frozen=True)
class Alert:
    """One rule firing at one evaluation point."""

    metric: str
    value: float
    #: Total blocks pushed when the alert fired.
    block_count: int
    rule: ThresholdRule

    def __str__(self) -> str:
        return f"block {self.block_count}: {self.metric}={self.value:.4f}"


class StreamingMonitor:
    """Incremental sliding-window measurement with threshold alerts."""

    def __init__(
        self,
        window_size: int,
        stride: int | None = None,
        metrics: Sequence[str | Metric] = ("gini", "entropy", "nakamoto"),
    ) -> None:
        if window_size <= 0:
            raise MeasurementError(f"window_size must be positive, got {window_size}")
        if stride is None:
            stride = max(window_size // 2, 1)
        if stride <= 0:
            raise MeasurementError(f"stride must be positive, got {stride}")
        self.window_size = window_size
        self.stride = stride
        self._metrics = [
            get_metric(metric) if isinstance(metric, str) else metric
            for metric in metrics
        ]
        self._window = RollingHistogram(capacity=window_size)
        self._rules: list[ThresholdRule] = []
        self._block_count = 0
        self._history: dict[str, list[tuple[int, float]]] = {
            metric.name: [] for metric in self._metrics
        }

    # -- configuration -------------------------------------------------------

    def add_rule(self, rule: ThresholdRule) -> None:
        """Register an alert rule; its metric must be monitored."""
        if rule.metric not in self._history:
            raise MeasurementError(
                f"rule metric {rule.metric!r} is not monitored; "
                f"monitored: {sorted(self._history)}"
            )
        self._rules.append(rule)

    # -- ingestion --------------------------------------------------------------

    def push(self, producers: Sequence[str], fractional: bool = False) -> list[Alert]:
        """Ingest one block; returns any alerts fired by this push.

        ``producers`` are the block's payout addresses (usually one).
        With ``fractional`` each address gets ``1/k`` credit, otherwise
        each gets a full credit (the paper's per-address policy).
        """
        if not producers:
            raise MeasurementError("a block needs at least one producer")
        weight_each = 1.0 / len(producers) if fractional else 1.0
        self._window.push(producers, weight_each)
        self._block_count += 1
        if (
            self._block_count < self.window_size
            or (self._block_count - self.window_size) % self.stride != 0
        ):
            return []
        return self._evaluate()

    def push_many(self, blocks: Sequence[Sequence[str]]) -> list[Alert]:
        """Ingest a batch of blocks; returns all alerts fired."""
        alerts: list[Alert] = []
        for producers in blocks:
            alerts.extend(self.push(producers))
        return alerts

    def _evaluate(self) -> list[Alert]:
        # One-row batch so every monitored metric shares a single sort of
        # the current window's distribution.
        with obs.span("streaming.evaluate", block_count=self._block_count):
            batch = DistributionBatch.from_distributions(
                [self._window.distribution()]
            )
            alerts: list[Alert] = []
            for metric in self._metrics:
                value = float(compute_batch(metric, batch)[0])
                self._history[metric.name].append((self._block_count, value))
                for rule in self._rules:
                    if rule.metric == metric.name and rule.triggered(value):
                        alerts.append(
                            Alert(
                                metric=metric.name,
                                value=value,
                                block_count=self._block_count,
                                rule=rule,
                            )
                        )
        obs.counter("streaming.evaluations")
        if alerts:
            obs.counter("streaming.alerts", len(alerts))
            for alert in alerts:
                logger.warning(
                    "threshold alert: %s=%.4f at block %d (below=%s above=%s)",
                    alert.metric, alert.value, alert.block_count,
                    alert.rule.below, alert.rule.above,
                )
        return alerts

    # -- inspection -----------------------------------------------------------------

    @property
    def blocks_seen(self) -> int:
        """Total blocks pushed so far."""
        return self._block_count

    @property
    def metric_names(self) -> tuple[str, ...]:
        """Names of the monitored metrics, in registration order."""
        return tuple(self._history)

    @property
    def evaluations(self) -> int:
        """How many window evaluations have run so far."""
        return len(next(iter(self._history.values()), ()))

    def latest(self) -> dict[str, float]:
        """Most recent value per monitored metric (empty before 1st window)."""
        return {
            name: history[-1][1]
            for name, history in self._history.items()
            if history
        }

    def current(self, metric: str) -> float:
        """Compute ``metric`` over the current window immediately."""
        if self._window.n_blocks == 0:
            raise MeasurementError("no blocks in the window yet")
        resolved = get_metric(metric)
        return float(resolved.compute(self._window.distribution()))

    def history(self, metric: str) -> list[tuple[int, float]]:
        """(block_count, value) pairs of all evaluations for ``metric``."""
        try:
            return list(self._history[metric])
        except KeyError:
            raise MeasurementError(f"metric {metric!r} is not monitored") from None

    def producers_in_window(self) -> int:
        """Distinct producers currently in the window."""
        return self._window.n_active
