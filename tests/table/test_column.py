"""Tests for the typed column wrapper."""

import numpy as np
import pytest

from repro.errors import SchemaError, TableError
from repro.table.column import Column, infer_kind


class TestInferKind:
    def test_int_list(self):
        assert infer_kind([1, 2, 3]) == "int"

    def test_float_list(self):
        assert infer_kind([1.0, 2.5]) == "float"

    def test_bool_list(self):
        assert infer_kind([True, False]) == "bool"

    def test_str_list(self):
        assert infer_kind(["a", "b"]) == "str"

    def test_numpy_dtypes(self):
        assert infer_kind(np.asarray([1, 2], dtype=np.int32)) == "int"
        assert infer_kind(np.asarray([1.0], dtype=np.float32)) == "float"
        assert infer_kind(np.asarray([True])) == "bool"

    def test_empty_defaults_to_str(self):
        assert infer_kind([]) == "str"

    def test_unsupported_type_raises(self):
        with pytest.raises(SchemaError):
            infer_kind([object()])


class TestColumnConstruction:
    def test_int_column(self):
        column = Column([1, 2, 3])
        assert column.kind == "int"
        assert column.values.dtype == np.int64

    def test_str_column_uses_object_array(self):
        column = Column(["miner-with-a-rather-long-name", "b"])
        assert column.values.dtype == object
        assert column.to_list()[0] == "miner-with-a-rather-long-name"

    def test_explicit_kind_coerces(self):
        column = Column([1, 2], kind="float")
        assert column.kind == "float"
        assert column.values.dtype == np.float64

    def test_2d_rejected(self):
        with pytest.raises(TableError):
            Column(np.zeros((2, 2)))

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError):
            Column([1], kind="decimal")

    def test_none_allowed_in_str_columns(self):
        column = Column(["a", None])
        assert column.to_list() == ["a", None]

    def test_from_column_copies_identity(self):
        base = Column([1, 2])
        again = Column(base)
        assert again == base


class TestColumnEquality:
    def test_equal_columns(self):
        assert Column([1, 2]) == Column([1, 2])

    def test_kind_mismatch(self):
        assert Column([1, 2]) != Column([1.0, 2.0])

    def test_nan_equal_nan(self):
        assert Column([np.nan, 1.0]) == Column([np.nan, 1.0])

    def test_length_mismatch(self):
        assert Column([1]) != Column([1, 2])


class TestColumnOps:
    def test_take(self):
        column = Column([10, 20, 30])
        assert column.take(np.asarray([2, 0])).to_list() == [30, 10]

    def test_len_and_iter(self):
        column = Column(["x", "y"])
        assert len(column) == 2
        assert list(column) == ["x", "y"]

    def test_repr_truncates(self):
        column = Column(list(range(10)))
        assert "..." in repr(column)


class TestCast:
    def test_int_to_float(self):
        assert Column([1, 2]).cast("float").to_list() == [1.0, 2.0]

    def test_int_to_str(self):
        assert Column([1, 2]).cast("str").to_list() == ["1", "2"]

    def test_str_to_int(self):
        assert Column(["1", "2"]).cast("int").to_list() == [1, 2]

    def test_str_to_bool(self):
        assert Column(["true", "0", "yes"]).cast("bool").to_list() == [True, False, True]

    def test_same_kind_is_identity(self):
        column = Column([1])
        assert column.cast("int") is column

    def test_unparseable_str_raises(self):
        with pytest.raises(SchemaError):
            Column(["x"]).cast("int")

    def test_unknown_kind_raises(self):
        with pytest.raises(SchemaError):
            Column([1]).cast("complex")
