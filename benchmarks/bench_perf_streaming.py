"""Performance — streaming monitor ingestion throughput.

A monitoring deployment must keep up with block arrival trivially; this
bench measures pushes/second through a Bitcoin-sized window (144/72) and a
day of Ethereum-scale feed (6,000 blocks, window 6,000 / stride 3,000).
"""

import numpy as np

from repro.core.streaming import StreamingMonitor, ThresholdRule


def make_feed(n_blocks: int, n_producers: int, seed: int) -> list[list[str]]:
    rng = np.random.default_rng(seed)
    names = [f"p{i}" for i in range(n_producers)]
    shares = rng.dirichlet(np.full(n_producers, 0.5))
    picks = rng.choice(n_producers, size=n_blocks, p=shares)
    return [[names[p]] for p in picks]


def test_perf_streaming_bitcoin_scale(benchmark):
    feed = make_feed(2_000, 25, seed=1)

    def run():
        monitor = StreamingMonitor(window_size=144, stride=72)
        monitor.add_rule(ThresholdRule("nakamoto", below=3))
        return monitor.push_many(feed)

    benchmark(run)


def test_perf_streaming_ethereum_scale(benchmark):
    feed = make_feed(12_000, 70, seed=2)

    def run():
        monitor = StreamingMonitor(
            window_size=6_000, stride=3_000, metrics=("gini", "entropy")
        )
        return monitor.push_many(feed)

    result = benchmark(run)
    assert result == []  # quiet feed, no rules
