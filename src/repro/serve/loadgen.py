"""A small closed/open-loop HTTP load generator for the telemetry server.

``repro loadgen`` drives the overload layer the way a fleet of scrapers
would and reports what actually happened: per-status-code counts, how
many answers were degraded-stale, latency percentiles, and — the number
the CI smoke test greps for — how many responses were *unhandled*
failures (a 500, or any 5xx without a ``Retry-After`` hint).  A healthy
overload-protected server under 4x its capacity should show zero.

Two driving modes:

``closed``
    Each of ``clients`` workers fires its next request only after the
    previous one completes (optionally paced to ``rps`` total) — the
    classic closed loop, where server slowdown throttles the offered
    load.
``open``
    Requests are fired on a fixed schedule of ``rps`` total regardless
    of completions — the arrival process does not care that the server
    is slow, which is exactly what makes open loops reveal overload
    behaviour closed loops hide.

Each worker carries its own ``X-Client-Id`` so the server's per-client
rate limiter sees ``clients`` distinct clients.
"""

from __future__ import annotations

import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ValidationError

#: Recognized driving modes, in CLI spelling.
LOADGEN_MODES = ("closed", "open")


def percentile(sorted_values: list[float], pct: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty list.

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.0
    >>> percentile([1.0, 2.0, 3.0, 4.0], 99)
    4.0
    """
    if not sorted_values:
        raise ValidationError("percentile of an empty list")
    rank = max(int(len(sorted_values) * pct / 100.0 + 0.5), 1)
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass(frozen=True)
class LoadgenConfig:
    """Knobs for one load-generation run."""

    url: str
    path: str = "/status"
    duration: float = 5.0
    clients: int = 4
    rps: float | None = None
    mode: str = "closed"
    timeout: float = 2.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValidationError(f"duration must be positive, got {self.duration}")
        if self.clients < 1:
            raise ValidationError(f"clients must be >= 1, got {self.clients}")
        if self.rps is not None and self.rps <= 0:
            raise ValidationError(f"rps must be positive, got {self.rps}")
        if self.mode not in LOADGEN_MODES:
            raise ValidationError(
                f"unknown mode {self.mode!r} "
                f"(expected one of {', '.join(LOADGEN_MODES)})"
            )
        if self.mode == "open" and self.rps is None:
            raise ValidationError("open-loop mode requires --rps")
        if self.timeout <= 0:
            raise ValidationError(f"timeout must be positive, got {self.timeout}")


@dataclass(frozen=True)
class LoadgenReport:
    """What one load-generation run observed."""

    requests: int
    duration: float
    status_counts: dict[int, int] = field(default_factory=dict)
    stale_responses: int = 0
    errors: int = 0
    unhandled_5xx: int = 0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0

    @property
    def throughput(self) -> float:
        """Completed requests per second over the run."""
        return self.requests / self.duration if self.duration > 0 else 0.0

    def ok(self) -> bool:
        """No connection-level errors and no unhandled 5xx responses."""
        return self.errors == 0 and self.unhandled_5xx == 0


class _Collector:
    """Thread-safe accumulation of per-request observations."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.latencies: list[float] = []
        self.status_counts: dict[int, int] = {}
        self.stale = 0
        self.errors = 0
        self.unhandled = 0

    def record(self, status: int, latency: float, stale: bool,
               retry_after: bool) -> None:
        with self._lock:
            self.latencies.append(latency)
            self.status_counts[status] = self.status_counts.get(status, 0) + 1
            if stale:
                self.stale += 1
            # A shed must carry a hint; a bare 5xx is an unhandled failure.
            if status >= 500 and not retry_after:
                self.unhandled += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1


def _fire(url: str, client_id: str, timeout: float,
          collector: _Collector) -> None:
    """One request; every outcome lands in the collector."""
    request = urllib.request.Request(url, headers={"X-Client-Id": client_id})
    start = time.perf_counter()
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            response.read()
            headers = response.headers
            status = response.status
    except urllib.error.HTTPError as exc:
        exc.read()
        headers = exc.headers
        status = exc.code
    except (urllib.error.URLError, OSError, TimeoutError):
        collector.record_error()
        return
    collector.record(
        status,
        time.perf_counter() - start,
        stale=headers.get("X-Repro-Degraded") == "stale",
        retry_after=headers.get("Retry-After") is not None,
    )


def run_loadgen(config: LoadgenConfig) -> LoadgenReport:
    """Drive the server per ``config`` and report what came back."""
    url = config.url.rstrip("/") + config.path
    collector = _Collector()
    deadline = time.monotonic() + config.duration
    threads: list[threading.Thread] = []

    if config.mode == "closed":
        # Pacing: with a target rate, each client owes one request every
        # clients/rps seconds; without one, clients fire back-to-back.
        interval = config.clients / config.rps if config.rps else 0.0

        def closed_worker(index: int) -> None:
            client_id = f"loadgen-{index}"
            next_at = time.monotonic()
            while True:
                now = time.monotonic()
                if now >= deadline:
                    return
                if interval:
                    if now < next_at:
                        time.sleep(min(next_at - now, deadline - now))
                        if time.monotonic() >= deadline:
                            return
                    next_at += interval
                _fire(url, client_id, config.timeout, collector)

        for i in range(config.clients):
            thread = threading.Thread(
                target=closed_worker, args=(i,),
                name=f"repro-loadgen-{i}", daemon=True,
            )
            threads.append(thread)
    else:
        # Open loop: a global schedule at rps, sliced round-robin across
        # workers so each fires on time even if its last call is slow.
        assert config.rps is not None
        interval = config.clients / config.rps
        start_at = time.monotonic()

        def open_worker(index: int) -> None:
            client_id = f"loadgen-{index}"
            fire_at = start_at + (index / config.rps)
            while fire_at < deadline:
                now = time.monotonic()
                if now < fire_at:
                    time.sleep(fire_at - now)
                _fire(url, client_id, config.timeout, collector)
                fire_at += interval

        for i in range(config.clients):
            thread = threading.Thread(
                target=open_worker, args=(i,),
                name=f"repro-loadgen-{i}", daemon=True,
            )
            threads.append(thread)

    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=config.duration + 10 * config.timeout)
    elapsed = time.monotonic() - started

    latencies = sorted(collector.latencies)
    return LoadgenReport(
        requests=len(latencies),
        duration=elapsed,
        status_counts=dict(sorted(collector.status_counts.items())),
        stale_responses=collector.stale,
        errors=collector.errors,
        unhandled_5xx=collector.unhandled,
        p50_ms=percentile(latencies, 50) * 1000 if latencies else 0.0,
        p95_ms=percentile(latencies, 95) * 1000 if latencies else 0.0,
        p99_ms=percentile(latencies, 99) * 1000 if latencies else 0.0,
    )


def format_report(report: LoadgenReport) -> str:
    """Render the greppable multi-line summary the CLI prints.

    One fact per line, ``key=value`` tokens — the CI smoke test greps
    these (e.g. ``unhandled_5xx=0``, a nonzero ``status,429``).
    """
    lines = [
        f"loadgen requests={report.requests} "
        f"duration_s={report.duration:.2f} "
        f"throughput_rps={report.throughput:.1f}",
    ]
    for status, count in report.status_counts.items():
        lines.append(f"loadgen status,{status} count={count}")
    lines.append(
        f"loadgen stale={report.stale_responses} "
        f"errors={report.errors} unhandled_5xx={report.unhandled_5xx}"
    )
    lines.append(
        f"loadgen latency_ms p50={report.p50_ms:.2f} "
        f"p95={report.p95_ms:.2f} p99={report.p99_ms:.2f}"
    )
    return "\n".join(lines)


def print_report(report: LoadgenReport,
                 print_fn: Callable[[str], None] = print) -> None:
    """Print the formatted report one line at a time."""
    for line in format_report(report).splitlines():
        print_fn(line)
