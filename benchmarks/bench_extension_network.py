"""Extension bench — network-layer decentralization (related work [5]).

Gencer et al. compared Bitcoin's and Ethereum's *networks*: Bitcoin had
a higher-capacity, more datacenter-clustered network; both chains' mining
was "fairly centralized".  This bench builds Bitcoin-like and
Ethereum-like topologies, measures the network-layer metrics and checks
the qualitative shape: relay traffic concentrates far harder than
connectivity, the network Nakamoto coefficient dwarfs the consensus one,
and Ethereum's short block interval pays a much higher stale rate for the
same network.
"""

from repro.chain.pools import bitcoin_pools_2019, ethereum_pools_2019
from repro.network import (
    NetworkParams,
    betweenness_concentration,
    degree_gini,
    generate_network,
    network_nakamoto,
    relay_dominance,
    stale_rate,
)


def build_and_measure():
    results = {}
    for label, pools_fn, n_nodes, interval in (
        ("btc", bitcoin_pools_2019, 1_200, 600.0),
        ("eth", ethereum_pools_2019, 900, 13.2),
    ):
        pools = tuple(p.name for p in pools_fn().pools)
        network = generate_network(
            NetworkParams(n_nodes=n_nodes, pools=pools, seed=2019)
        )
        results[label] = {
            "degree_gini": degree_gini(network),
            "betweenness_gini": betweenness_concentration(network, sample=120),
            "relay_top20": relay_dominance(network, top_k=20, sample=120),
            "network_nakamoto": network_nakamoto(network, sample=120),
            "stale_rate": stale_rate(network, interval),
        }
    return results


def test_extension_network_layer(benchmark, btc):
    results = benchmark.pedantic(build_and_measure, rounds=1, iterations=1)
    print("\n=== network-layer decentralization ===")
    for label, metrics in results.items():
        line = "  ".join(f"{k}={v:.4f}" for k, v in metrics.items())
        print(f"  {label}: {line}")

    for label in ("btc", "eth"):
        metrics = results[label]
        # Relay traffic concentrates harder than connectivity.
        assert metrics["betweenness_gini"] > metrics["degree_gini"]
        # A small backbone carries a disproportionate share of relay...
        assert metrics["relay_top20"] > 0.1
        # ...but censoring a relay majority still takes far more entities
        # than the consensus-layer Nakamoto coefficient (4-5 / 2-3).
        assert metrics["network_nakamoto"] > 20
    # Ethereum's 13 s blocks pay a much higher stale rate than Bitcoin's
    # 600 s blocks on a comparable network.
    assert results["eth"]["stale_rate"] > 10 * results["btc"]["stale_rate"]
    consensus_nakamoto = btc.measure_calendar("nakamoto", "day").mean()
    assert results["btc"]["network_nakamoto"] > 4 * consensus_nakamoto
