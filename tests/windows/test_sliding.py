"""Tests for sliding windows (paper §III-A, Eq. 5)."""

import numpy as np
import pytest

from repro.chain.specs import BITCOIN, ETHEREUM
from repro.errors import WindowError
from repro.windows.base import BlockWindow
from repro.windows.sliding import (
    BlockWindowSequence,
    SlidingBlockWindows,
    sliding_window_count,
)


class TestEquationFive:
    def test_formula(self):
        # L = (S - N) / M + 1
        assert sliding_window_count(n_blocks=1_000, size=100, step=50) == 19

    def test_too_few_blocks_yields_zero(self):
        assert sliding_window_count(n_blocks=99, size=100, step=50) == 0

    def test_exactly_one_window(self):
        assert sliding_window_count(n_blocks=100, size=100, step=50) == 1

    def test_paper_bitcoin_daily_count(self):
        """~700 one-day sliding windows over 2019 Bitcoin (paper §III-B)."""
        count = sliding_window_count(BITCOIN.block_count, 144, 72)
        assert 700 <= count <= 760

    def test_paper_ethereum_daily_count(self):
        count = sliding_window_count(ETHEREUM.block_count, 6_000, 3_000)
        assert 700 <= count <= 740

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WindowError):
            sliding_window_count(100, 0, 10)
        with pytest.raises(WindowError):
            sliding_window_count(100, 10, 0)


class TestSlidingBlockWindows:
    def test_default_step_is_half(self):
        generator = SlidingBlockWindows(144)
        assert generator.step == 72
        assert generator.overlap == 72

    def test_generate_matches_expected_count(self):
        generator = SlidingBlockWindows(100, 50)
        windows = generator.generate(1_000)
        assert len(windows) == generator.expected_count(1_000) == 19

    def test_window_bounds(self):
        windows = SlidingBlockWindows(100, 50).generate(250)
        assert [(w.start_block, w.stop_block) for w in windows] == [
            (0, 100),
            (50, 150),
            (100, 200),
            (150, 250),
        ]

    def test_consecutive_overlap_is_n_minus_m(self):
        generator = SlidingBlockWindows(100, 30)
        windows = generator.generate(400)
        for a, b in zip(windows, windows[1:]):
            assert a.overlap(b) == 70 == generator.overlap

    def test_step_equal_to_size_gives_fixed_partition(self):
        windows = SlidingBlockWindows(100, 100).generate(300)
        for a, b in zip(windows, windows[1:]):
            assert a.overlap(b) == 0

    def test_all_windows_have_full_size(self):
        windows = SlidingBlockWindows(144).generate(1_000)
        assert all(w.size == 144 for w in windows)

    def test_doubles_points_vs_fixed(self):
        """The paper's motivation for M = N/2."""
        n_blocks = 52_560
        sliding = len(SlidingBlockWindows(144).generate(n_blocks))
        fixed = n_blocks // 144
        assert sliding == pytest.approx(2 * fixed, abs=2)

    def test_step_above_size_rejected(self):
        with pytest.raises(WindowError):
            SlidingBlockWindows(100, 101)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(WindowError):
            SlidingBlockWindows(0)

    def test_step_one_maximum_resolution(self):
        windows = SlidingBlockWindows(10, 1).generate(12)
        assert len(windows) == 3

    def test_size_one_minimum_step_is_one(self):
        generator = SlidingBlockWindows(1)
        assert generator.step == 1


class TestLazyWindowSequence:
    """generate() is lazy: windows materialize on access, not up front."""

    def test_generate_returns_lazy_sequence(self):
        windows = SlidingBlockWindows(100, 50).generate(1_000)
        assert isinstance(windows, BlockWindowSequence)
        assert not isinstance(windows, list)
        assert len(windows) == 19

    def test_indexing_and_negative_indexing(self):
        windows = SlidingBlockWindows(100, 50).generate(250)
        assert isinstance(windows[0], BlockWindow)
        assert windows[0].start_block == 0
        assert windows[-1].stop_block == 250
        assert windows[-1] == windows[3]

    def test_out_of_range_raises_index_error(self):
        windows = SlidingBlockWindows(100, 50).generate(250)
        with pytest.raises(IndexError):
            windows[4]
        with pytest.raises(IndexError):
            windows[-5]

    def test_slicing_returns_windows(self):
        windows = SlidingBlockWindows(100, 50).generate(300)
        tail = windows[1:]
        assert [w.start_block for w in tail] == [50, 100, 150, 200]

    def test_reiterable(self):
        windows = SlidingBlockWindows(10, 5).generate(40)
        assert list(windows) == list(windows)

    def test_labels_match_eager_construction(self):
        windows = SlidingBlockWindows(10, 5).generate(30)
        assert [w.label for w in windows] == [
            "blocks[0:10]",
            "blocks[5:15]",
            "blocks[10:20]",
            "blocks[15:25]",
            "blocks[20:30]",
        ]

    def test_start_offsets_ndarray(self):
        generator = SlidingBlockWindows(100, 50)
        offsets = generator.start_offsets(300)
        assert offsets.dtype == np.int64
        assert offsets.tolist() == [0, 50, 100, 150, 200]
        assert generator.generate(300).start_offsets().tolist() == offsets.tolist()
