"""Tests for attribution policies."""

import numpy as np
import pytest

from repro.chain.attribution import ATTRIBUTION_POLICIES, attribute
from repro.chain.pools import PoolInfo, PoolRegistry
from repro.errors import AttributionError
from tests.conftest import make_tiny_chain


@pytest.fixture
def chain():
    # Block 2 has three producers; everything else is single-producer.
    return make_tiny_chain([["a"], ["b"], ["a", "x", "y"], ["a"], ["c"]])


class TestPerAddress:
    def test_every_address_gets_full_credit(self, chain):
        credits = attribute(chain, "per-address")
        assert credits.n_credits == 7
        assert credits.weights.tolist() == [1.0] * 7
        assert credits.policy == "per-address"

    def test_distribution_counts_blocks_per_address(self, chain):
        credits = attribute(chain, "per-address")
        ids, totals = credits.distribution_with_entities(0, credits.n_credits)
        by_name = {credits.entity_names[int(i)]: t for i, t in zip(ids, totals)}
        assert by_name == {"a": 3.0, "b": 1.0, "x": 1.0, "y": 1.0, "c": 1.0}

    def test_total_weight_exceeds_block_count_with_anomalies(self, chain):
        credits = attribute(chain, "per-address")
        assert credits.total_weight == 7.0
        assert credits.n_blocks == 5


class TestFractional:
    def test_each_block_contributes_one(self, chain):
        credits = attribute(chain, "fractional")
        assert credits.total_weight == pytest.approx(5.0)

    def test_multi_block_splits_evenly(self, chain):
        credits = attribute(chain, "fractional")
        lo, hi = credits.credit_range_for_blocks(2, 3)
        assert credits.weights[lo:hi].tolist() == pytest.approx([1 / 3] * 3)


class TestFirstAddress:
    def test_one_credit_per_block(self, chain):
        credits = attribute(chain, "first-address")
        assert credits.n_credits == 5
        ids, totals = credits.distribution_with_entities(0, 5)
        by_name = {credits.entity_names[int(i)]: t for i, t in zip(ids, totals)}
        assert by_name == {"a": 3.0, "b": 1.0, "c": 1.0}


class TestPoolPolicy:
    def test_maps_addresses_to_pools(self, chain):
        registry = PoolRegistry(
            [
                PoolInfo("PoolA", "a", 0.5, 0.5),
                PoolInfo("PoolB", "b", 0.3, 0.3),
            ]
        )
        credits = attribute(chain, "pool", registry=registry)
        ids, totals = credits.distribution_with_entities(0, credits.n_credits)
        by_name = {credits.entity_names[int(i)]: t for i, t in zip(ids, totals)}
        assert by_name == {"PoolA": 3.0, "PoolB": 1.0, "c": 1.0}

    def test_requires_registry(self, chain):
        with pytest.raises(AttributionError):
            attribute(chain, "pool")


class TestCreditRanges:
    def test_block_range(self, chain):
        credits = attribute(chain, "per-address")
        lo, hi = credits.credit_range_for_blocks(1, 3)
        assert (lo, hi) == (1, 5)  # block 1 (1 credit) + block 2 (3 credits)

    def test_time_range(self, chain):
        credits = attribute(chain, "per-address")
        t0 = int(chain.timestamps[1])
        t1 = int(chain.timestamps[3])
        lo, hi = credits.credit_range_for_time(t0, t1)
        assert (lo, hi) == (1, 5)

    def test_invalid_block_range_raises(self, chain):
        credits = attribute(chain, "per-address")
        with pytest.raises(AttributionError):
            credits.credit_range_for_blocks(0, 99)

    def test_distribution_drops_zero_entities(self, chain):
        credits = attribute(chain, "per-address")
        lo, hi = credits.credit_range_for_blocks(0, 1)
        assert credits.distribution(lo, hi).tolist() == [1.0]

    def test_top_entities_ordering(self, chain):
        credits = attribute(chain, "per-address")
        top = credits.top_entities(0, credits.n_credits, k=2)
        assert top[0] == ("a", 3.0)
        assert top[1][1] == 1.0


class TestPolicyDispatch:
    def test_unknown_policy_raises(self, chain):
        with pytest.raises(AttributionError, match="unknown policy"):
            attribute(chain, "by-vibes")

    def test_all_policies_listed(self):
        assert set(ATTRIBUTION_POLICIES) == {
            "per-address",
            "first-address",
            "fractional",
            "pool",
        }

    @pytest.mark.parametrize("policy", ["per-address", "first-address", "fractional"])
    def test_block_offsets_are_csr(self, chain, policy):
        credits = attribute(chain, policy)
        assert credits.block_offsets[0] == 0
        assert credits.block_offsets[-1] == credits.n_credits
        assert np.all(np.diff(credits.block_offsets) >= 1)
