"""Miner population: pools + persistent small miners + singleton stream.

Three tiers produce blocks:

* **Pools** — the registry entities with interpolated, jittered shares.
* **Persistent small miners** — a fixed set of small entities (solo farms,
  tiny pools) holding a configured slice of total power all year.  They
  keep one identity, so they do *not* inflate long-window producer
  populations much.
* **Singletons** — fresh one-block producers (one-off payout addresses).
  Each appears exactly once, so longer windows accumulate more of them —
  the mechanism behind the paper's granularity-dependent Gini levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chain.pools import PoolRegistry
from repro.errors import SimulationError
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class TailConfig:
    """Configuration of the non-pool producer tail."""

    #: Number of persistent small miners.
    persistent_count: int
    #: Combined share of total mining power held by persistent small miners.
    persistent_share: float
    #: Mean singleton blocks per day during the early regime.
    singleton_rate_early: float
    #: Mean singleton blocks per day after ``early_period_end``.
    singleton_rate_late: float
    #: First day of the "late" regime (the paper's Bitcoin data becomes
    #: markedly less fragmented after ~day 50).
    early_period_end: int = 50

    def __post_init__(self) -> None:
        if self.persistent_count < 0:
            raise SimulationError("persistent_count must be >= 0")
        if not 0.0 <= self.persistent_share < 1.0:
            raise SimulationError("persistent_share must be in [0, 1)")
        if self.singleton_rate_early < 0 or self.singleton_rate_late < 0:
            raise SimulationError("singleton rates must be >= 0")
        if self.early_period_end < 0:
            raise SimulationError("early_period_end must be >= 0")

    def singleton_rate(self, day: int) -> float:
        """Expected singleton blocks on ``day``."""
        if day < self.early_period_end:
            return self.singleton_rate_early
        return self.singleton_rate_late


class MinerPopulation:
    """The entity universe of one simulated chain.

    Entity ids are dense: pools first (registry order), then persistent
    small miners, then singletons in order of appearance.
    """

    def __init__(
        self,
        prefix: str,
        registry: PoolRegistry,
        tail: TailConfig,
        seed: int,
    ) -> None:
        self.prefix = prefix
        self.registry = registry
        self.tail = tail
        self._names: list[str] = [pool.address for pool in registry.pools]
        self.n_pools = len(self._names)
        rng = derive_rng(seed, "miners/persistent-weights")
        if tail.persistent_count > 0:
            raw = rng.dirichlet(np.full(tail.persistent_count, 2.0))
            self._persistent_weights = raw * tail.persistent_share
            self._names.extend(
                f"{prefix}-small-{i:04d}" for i in range(tail.persistent_count)
            )
        else:
            self._persistent_weights = np.zeros(0)
        self.n_persistent = tail.persistent_count
        self._singleton_count = 0

    # -- identity ----------------------------------------------------------

    @property
    def entity_names(self) -> list[str]:
        """All entity names minted so far (pools, persistent, singletons)."""
        return self._names

    @property
    def n_entities(self) -> int:
        """Total entities minted so far."""
        return len(self._names)

    def pool_entity_ids(self) -> np.ndarray:
        """Entity ids of the pools, in registry order."""
        return np.arange(self.n_pools, dtype=np.int64)

    def persistent_entity_ids(self) -> np.ndarray:
        """Entity ids of the persistent small miners."""
        return np.arange(self.n_pools, self.n_pools + self.n_persistent, dtype=np.int64)

    def mint_singletons(self, day: int, count: int, kind: str = "1time") -> np.ndarray:
        """Create ``count`` fresh one-off producers for ``day``; return ids.

        ``kind`` distinguishes ordinary singleton miners (``"1time"``) from
        extra coinbase payout addresses injected by anomalies (``"cbout"``).
        """
        if count < 0:
            raise SimulationError("singleton count must be >= 0")
        start = len(self._names)
        self._names.extend(
            f"{self.prefix}-{kind}-{day:03d}-{self._singleton_count + i:05d}"
            for i in range(count)
        )
        self._singleton_count += count
        return np.arange(start, start + count, dtype=np.int64)

    # -- drawing -------------------------------------------------------------

    def recurring_probabilities(self, pool_shares: np.ndarray) -> np.ndarray:
        """Block-producer probabilities over pools + persistent miners.

        ``pool_shares`` are the (unnormalized) pool shares for the day; the
        persistent miners' weights are appended and the whole vector is
        normalized.
        """
        if pool_shares.shape[0] != self.n_pools:
            raise SimulationError(
                f"expected {self.n_pools} pool shares, got {pool_shares.shape[0]}"
            )
        combined = np.concatenate([pool_shares, self._persistent_weights])
        total = combined.sum()
        if total <= 0:
            raise SimulationError("miner probabilities sum to zero")
        return combined / total

    def draw_day(
        self,
        day: int,
        n_blocks: int,
        pool_shares: np.ndarray,
        rng: np.random.Generator,
        share_overrides: Sequence[tuple[np.ndarray, np.ndarray]] = (),
    ) -> np.ndarray:
        """Producer entity ids for the ``n_blocks`` blocks of ``day``.

        ``share_overrides`` is a sequence of ``(block_mask, pool_shares)``
        pairs: blocks selected by a mask are drawn from the alternative
        pool-share vector (used for sub-day share spikes).  Masks are
        applied in order; later masks win on overlap.
        """
        if n_blocks == 0:
            return np.zeros(0, dtype=np.int64)
        n_singletons = min(
            int(rng.poisson(self.tail.singleton_rate(day))), n_blocks
        )
        singleton_mask = np.zeros(n_blocks, dtype=bool)
        if n_singletons:
            positions = rng.choice(n_blocks, size=n_singletons, replace=False)
            singleton_mask[positions] = True
        producers = np.empty(n_blocks, dtype=np.int64)
        if n_singletons:
            producers[singleton_mask] = self.mint_singletons(day, n_singletons)
        # Partition recurring blocks by which share vector governs them.
        governing = np.zeros(n_blocks, dtype=np.int64)
        share_vectors = [pool_shares]
        for mask, shares in share_overrides:
            if mask.shape[0] != n_blocks:
                raise SimulationError("share override mask has wrong length")
            share_vectors.append(shares)
            governing[mask] = len(share_vectors) - 1
        for vector_index, shares in enumerate(share_vectors):
            rows = np.flatnonzero((governing == vector_index) & ~singleton_mask)
            if rows.shape[0] == 0:
                continue
            probabilities = self.recurring_probabilities(shares)
            producers[rows] = rng.choice(
                probabilities.shape[0], size=rows.shape[0], p=probabilities
            ).astype(np.int64)
        return producers
