"""Tests for time-based sliding windows."""

import pytest

from repro.errors import WindowError
from repro.util.timeutils import SECONDS_PER_DAY, YEAR_2019_END, YEAR_2019_START
from repro.windows.timesliding import SlidingTimeWindows


class TestSlidingTimeWindows:
    def test_default_step_is_half_duration(self):
        generator = SlidingTimeWindows(SECONDS_PER_DAY)
        assert generator.step == SECONDS_PER_DAY // 2
        assert generator.overlap == SECONDS_PER_DAY // 2

    def test_one_day_windows_over_2019(self):
        generator = SlidingTimeWindows(SECONDS_PER_DAY)
        windows = generator.generate()
        # (365d - 1d) / 0.5d + 1 = 729 windows.
        assert len(windows) == 729
        assert windows[0].start_ts == YEAR_2019_START
        assert windows[-1].end_ts <= YEAR_2019_END

    def test_every_window_has_exact_duration(self):
        windows = SlidingTimeWindows(7 * SECONDS_PER_DAY).generate()
        assert all(w.duration == 7 * SECONDS_PER_DAY for w in windows)

    def test_consecutive_starts_differ_by_step(self):
        generator = SlidingTimeWindows(SECONDS_PER_DAY, 6 * 3_600)
        windows = generator.generate()
        for a, b in zip(windows, windows[1:]):
            assert b.start_ts - a.start_ts == 6 * 3_600

    def test_custom_span(self):
        start = YEAR_2019_START
        generator = SlidingTimeWindows(
            100, 50, start_ts=start, end_ts=start + 400
        )
        assert generator.expected_count() == 7
        assert len(generator.generate()) == 7

    def test_span_shorter_than_duration_yields_zero(self):
        generator = SlidingTimeWindows(
            1_000, 500, start_ts=0, end_ts=999
        )
        assert generator.generate() == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration": 0},
            {"duration": 100, "step": 0},
            {"duration": 100, "step": 200},
            {"duration": 100, "start_ts": 10, "end_ts": 10},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(WindowError):
            SlidingTimeWindows(**kwargs)


class TestEngineIntegration:
    def test_measure_time_sliding(self, btc_engine):
        series = btc_engine.measure_time_sliding("entropy", SECONDS_PER_DAY)
        assert series.window_desc == f"time-sliding-{SECONDS_PER_DAY}/{SECONDS_PER_DAY // 2}"
        assert len(series) == 729

    def test_time_and_block_sliding_agree_on_average(self, btc_engine):
        """24h windows and 144-block windows measure the same process."""
        by_time = btc_engine.measure_time_sliding("entropy", SECONDS_PER_DAY)
        by_blocks = btc_engine.measure_sliding("entropy", 144)
        assert by_time.mean() == pytest.approx(by_blocks.mean(), abs=0.1)
