"""Tests for the markdown report generator."""

import pytest

from repro.analysis.report import generate_report
from repro.analysis.study import DecentralizationStudy


@pytest.fixture(scope="module")
def report_text(btc_chain, eth_chain) -> str:
    study = DecentralizationStudy(bitcoin=btc_chain, ethereum=eth_chain)
    return generate_report(study)


class TestReportContent:
    def test_has_all_sections(self, report_text):
        for heading in (
            "# Decentralization study report",
            "## Datasets",
            "## Headline findings",
            "## Figures",
            "## Anomaly scan",
        ):
            assert heading in report_text

    def test_dataset_counts_present(self, report_text):
        assert "54,231" in report_text
        assert "2,204,650" in report_text

    def test_findings_verdicts(self, report_text):
        assert "**More decentralized:** bitcoin" in report_text
        assert "**More stable:** ethereum" in report_text

    def test_every_figure_has_a_section(self, report_text):
        for i in range(1, 15):
            assert f"### fig{i}:" in report_text

    def test_fig7_distributions_rendered(self, report_text):
        assert "2019-12-07" in report_text
        assert "(other):" in report_text

    def test_sparklines_rendered(self, report_text):
        assert "`▁" in report_text or "▁" in report_text

    def test_anomaly_scan_includes_day14(self, report_text):
        assert "2019-01-14" in report_text


class TestReportFile:
    def test_written_to_disk(self, btc_chain, eth_chain, tmp_path):
        study = DecentralizationStudy(bitcoin=btc_chain, ethereum=eth_chain)
        path = tmp_path / "report.md"
        text = generate_report(study, path=path)
        assert path.read_text(encoding="utf-8") == text
