"""Shared fixtures.

The full calibrated chains are expensive enough to build once per session:
``btc_chain`` (54,231 blocks, ~1 s) and ``eth_chain`` (2.2 M blocks, ~6 s)
are session-scoped; most unit tests use the small synthetic chains below
instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chain.chain import Chain
from repro.chain.specs import ChainSpec
from repro.core.engine import MeasurementEngine
from repro.simulation.scenarios import simulate_bitcoin_2019, simulate_ethereum_2019
from repro.util.timeutils import YEAR_2019_START


@pytest.fixture(scope="session")
def btc_chain() -> Chain:
    """The calibrated Bitcoin 2019 dataset."""
    return simulate_bitcoin_2019(seed=2019)


@pytest.fixture(scope="session")
def eth_chain() -> Chain:
    """The calibrated Ethereum 2019 dataset."""
    return simulate_ethereum_2019(seed=2019)


@pytest.fixture(scope="session")
def btc_engine(btc_chain: Chain) -> MeasurementEngine:
    return MeasurementEngine.from_chain(btc_chain)


@pytest.fixture(scope="session")
def eth_engine(eth_chain: Chain) -> MeasurementEngine:
    return MeasurementEngine.from_chain(eth_chain)


TINY_SPEC = ChainSpec(
    name="tinychain",
    start_height=1_000,
    block_count=12,
    target_interval=600.0,
    blocks_per_day=144,
    window_day=4,
    window_week=8,
    window_month=12,
)


def make_tiny_chain(
    producers_per_block: list[list[str]],
    start_ts: int = YEAR_2019_START,
    spacing: int = 600,
) -> Chain:
    """Build a small chain with explicit per-block producer lists."""
    n = len(producers_per_block)
    heights = TINY_SPEC.start_height + np.arange(n, dtype=np.int64)
    timestamps = start_ts + spacing * np.arange(n, dtype=np.int64)
    names: list[str] = []
    name_ids: dict[str, int] = {}
    ids: list[int] = []
    offsets = np.zeros(n + 1, dtype=np.int64)
    for i, producers in enumerate(producers_per_block):
        for producer in producers:
            if producer not in name_ids:
                name_ids[producer] = len(names)
                names.append(producer)
            ids.append(name_ids[producer])
        offsets[i + 1] = len(ids)
    spec = ChainSpec(
        name=TINY_SPEC.name,
        start_height=TINY_SPEC.start_height,
        block_count=max(n, 1),
        target_interval=TINY_SPEC.target_interval,
        blocks_per_day=TINY_SPEC.blocks_per_day,
        window_day=TINY_SPEC.window_day,
        window_week=TINY_SPEC.window_week,
        window_month=TINY_SPEC.window_month,
    )
    return Chain(
        spec,
        heights,
        timestamps,
        offsets,
        np.asarray(ids, dtype=np.int64),
        names,
    )


@pytest.fixture
def tiny_chain() -> Chain:
    """Nine blocks: a dominant, b medium, c small, d single multi-coinbase."""
    return make_tiny_chain(
        [
            ["a"],
            ["a"],
            ["b"],
            ["a"],
            ["c"],
            ["a", "x", "y"],
            ["b"],
            ["a"],
            ["c"],
        ]
    )
