"""Calibrated 2019 scenarios for Bitcoin and Ethereum.

These are the datasets every figure reproduction runs on.  The constants
below were tuned (see EXPERIMENTS.md) so that the per-address-attribution
measurements land in the paper's reported ranges:

* Bitcoin — daily Gini mostly 0.45–0.60 with early-year dips, monthly Gini
  up to ~0.9; daily entropy 3.5–4.0 with early spikes > 5.5; Nakamoto
  stable at 4 mid-year, 4–5 elsewhere, with extreme daily values in the
  first 50 days driven by multi-coinbase blocks.
* Ethereum — Gini ~0.84/0.88/0.92 by granularity, entropy 3.3–3.5,
  Nakamoto oscillating between 2 and 3; everything markedly more stable
  than Bitcoin.
"""

from __future__ import annotations

from repro.chain.chain import Chain
from repro.chain.pools import bitcoin_pools_2019, ethereum_pools_2019
from repro.chain.specs import BITCOIN, ETHEREUM
from repro.simulation.anomalies import MultiCoinbaseEvent, ShareSpike
from repro.simulation.miners import TailConfig
from repro.simulation.params import SimulationParams
from repro.simulation.powsim import ChainSimulator

#: The two anomalous blocks the paper dissects (§II-C1d): Jan 14, 2019,
#: blocks 558,473 and 558,545 with >80 and >90 coinbase addresses.
DAY14_EVENTS = (
    MultiCoinbaseEvent(day=13, position=0.35, n_addresses=84),
    MultiCoinbaseEvent(day=13, position=0.78, n_addresses=95),
)

#: Further early-year multi-coinbase payouts (the paper reports extreme
#: daily values throughout the first ~50 days, not only on day 14).
EARLY_2019_EVENTS = (
    MultiCoinbaseEvent(day=4, position=0.5, n_addresses=52),
    MultiCoinbaseEvent(day=8, position=0.2, n_addresses=34),
    MultiCoinbaseEvent(day=22, position=0.6, n_addresses=67),
    MultiCoinbaseEvent(day=30, position=0.4, n_addresses=41),
    MultiCoinbaseEvent(day=38, position=0.15, n_addresses=73),
    MultiCoinbaseEvent(day=45, position=0.85, n_addresses=48),
)

#: A one-day mining-power consolidation straddling the day-59/60 midnight —
#: the cross-interval event of paper §III-A / Fig. 13.  Each fixed calendar
#: day sees only half of it, while the sliding window aligned with it (index
#: ~119 of the N=144 family) sees it at full strength.
DAY60_CONSOLIDATION = (
    ShareSpike(pool_name="F2Pool", start_day=59.5, n_days=1.0, factor=5.0),
)


def bitcoin_2019_params(seed: int = 2019, include_anomalies: bool = True) -> SimulationParams:
    """Calibrated Bitcoin 2019 simulation parameters."""
    events = DAY14_EVENTS + EARLY_2019_EVENTS if include_anomalies else ()
    spikes = DAY60_CONSOLIDATION if include_anomalies else ()
    return SimulationParams(
        spec=BITCOIN,
        registry=bitcoin_pools_2019(),
        tail=TailConfig(
            persistent_count=12,
            persistent_share=0.050,
            singleton_rate_early=7.0,
            singleton_rate_late=0.7,
            early_period_end=50,
        ),
        seed=seed,
        jitter_sigma=0.07,
        jitter_phi=0.92,
        multi_coinbase_events=events,
        share_spikes=spikes,
    )


def ethereum_2019_params(seed: int = 2019) -> SimulationParams:
    """Calibrated Ethereum 2019 simulation parameters."""
    return SimulationParams(
        spec=ETHEREUM,
        registry=ethereum_pools_2019(),
        tail=TailConfig(
            persistent_count=55,
            persistent_share=0.085,
            singleton_rate_early=2.8,
            singleton_rate_late=2.8,
            early_period_end=0,
        ),
        seed=seed,
        jitter_sigma=0.055,
        jitter_phi=0.93,
        multi_coinbase_events=(),
        share_spikes=(),
    )


def simulate_bitcoin_2019(seed: int = 2019, include_anomalies: bool = True) -> Chain:
    """Simulate the paper's Bitcoin 2019 dataset (54,231 blocks)."""
    return ChainSimulator(bitcoin_2019_params(seed, include_anomalies)).run()


def simulate_ethereum_2019(seed: int = 2019) -> Chain:
    """Simulate the paper's Ethereum 2019 dataset (2,204,650 blocks)."""
    return ChainSimulator(ethereum_2019_params(seed)).run()
