"""Tests for the incremental trailing-window histogram."""

import numpy as np
import pytest

from repro.core.rolling import RollingHistogram
from repro.errors import MeasurementError


class TestRollingHistogram:
    def test_counts_before_capacity(self):
        rolling = RollingHistogram(capacity=10)
        for name in ["a", "b", "a", "c"]:
            rolling.push([name])
        assert rolling.n_blocks == 4
        assert rolling.n_active == 3
        assert sorted(rolling.distribution().tolist()) == [1.0, 1.0, 2.0]

    def test_eviction_removes_oldest_block(self):
        rolling = RollingHistogram(capacity=2)
        rolling.push(["a"])
        rolling.push(["b"])
        rolling.push(["c"])  # evicts a
        assert rolling.n_blocks == 2
        names, weights = rolling.distribution_with_entities()
        assert names == ["b", "c"]
        assert weights.tolist() == [1.0, 1.0]

    def test_exact_zero_removal_with_fractional_weights(self):
        """Count-based removal is exact even for 1/k weights that don't
        subtract back to a clean zero."""
        rolling = RollingHistogram(capacity=1)
        rolling.push(["a", "b", "c"], weight_each=1.0 / 3.0)
        rolling.push(["d"])  # evicts the fractional block entirely
        assert rolling.n_active == 1
        assert rolling.distribution().tolist() == [1.0]

    def test_multi_producer_blocks(self):
        rolling = RollingHistogram(capacity=3)
        rolling.push(["a", "b"])
        rolling.push(["a"])
        assert rolling.n_active == 2
        names, weights = rolling.distribution_with_entities()
        assert dict(zip(names, weights.tolist())) == {"a": 2.0, "b": 1.0}

    def test_slot_table_growth(self):
        rolling = RollingHistogram(capacity=100)
        for i in range(50):  # exceeds the initial 16 slots
            rolling.push([f"p{i}"])
        assert rolling.n_active == 50
        assert rolling.distribution().shape == (50,)

    def test_reference_equivalence_random_feed(self):
        from collections import Counter

        rng = np.random.default_rng(0)
        names = [f"p{i}" for i in range(7)]
        blocks = [
            list(rng.choice(names, size=int(rng.integers(1, 4)), replace=False))
            for _ in range(300)
        ]
        rolling = RollingHistogram(capacity=25)
        for block in blocks:
            rolling.push(block)
        reference = Counter(p for block in blocks[-25:] for p in block)
        got_names, got_weights = rolling.distribution_with_entities()
        assert dict(zip(got_names, got_weights.tolist())) == {
            name: float(count) for name, count in reference.items()
        }

    def test_invalid_input_rejected(self):
        with pytest.raises(MeasurementError):
            RollingHistogram(capacity=0)
        with pytest.raises(MeasurementError):
            RollingHistogram(capacity=4).push([])
