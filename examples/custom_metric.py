"""Extending the library with a custom decentralization metric.

Registers two metrics the paper does not use:

* ``nakamoto-90`` — entities needed to reach 90% of mining power (a
  "long-tail" variant of Eq. 4), and
* ``max-share`` — the single largest producer's share.

Both plug into the same measurement engine, window families and anomaly
detectors as the built-in metrics.

Run with::

    python examples/custom_metric.py
"""

import numpy as np

from repro import MeasurementEngine, simulate_ethereum_2019, summarize
from repro.metrics import FunctionMetric, nakamoto_coefficient, register_metric


def max_share(values: np.ndarray) -> float:
    """Share of the largest producer, in (0, 1]."""
    values = np.asarray(values, dtype=np.float64)
    return float(values.max() / values.sum())


def main() -> None:
    register_metric(FunctionMetric("max-share", max_share), overwrite=True)
    register_metric(
        FunctionMetric(
            "nakamoto-90",
            lambda values: nakamoto_coefficient(values, threshold=0.90),
        ),
        overwrite=True,
    )

    chain = simulate_ethereum_2019(seed=2019)
    engine = MeasurementEngine.from_chain(chain)

    for metric in ("max-share", "nakamoto-90"):
        series = engine.measure_calendar(metric, "week")
        print(summarize(series))

    weekly = engine.measure_calendar("max-share", "week")
    print(
        f"\nEthermine-scale dominance: the largest producer held "
        f"{weekly.mean():.1%} of weekly blocks on average "
        f"(max {weekly.max():.1%}) — compare the paper's observation that "
        f"a few entities dominate Ethereum mining."
    )
    n90 = engine.measure_calendar("nakamoto-90", "week")
    print(
        f"Reaching 90% of Ethereum's 2019 mining power takes "
        f"{n90.min():.0f}-{n90.max():.0f} entities per week "
        f"(vs 2-3 for the 51% threshold): the tail is long but powerless."
    )


if __name__ == "__main__":
    main()
