"""Bounded backpressure queue between a block feed and the monitor.

The streaming monitor used to consume its feed inline: a bursty producer
ran as fast as the consumer, and a slow consumer silently stalled the
feed.  :class:`IngestQueue` is the explicit handoff — a bounded buffer
whose depth **never** exceeds ``maxsize`` (property-tested over random
burst schedules in ``tests/serve/test_ingest_queue.py``) with three
overflow policies:

``block``
    The producer waits for space — classic backpressure; nothing is ever
    dropped, the feed slows to the consumer's pace.
``drop-oldest``
    The oldest queued block is evicted to admit the new one — bounded
    staleness; the monitor always sees the most recent blocks.
``shed``
    The new block is refused — bounded work; the feed is told (``put``
    returns ``False``) so upstream accounting stays exact.

Depth, peak depth, enqueue and drop totals land on the metrics registry
(``monitor.ingest.*``) so ``/metrics`` scrapes, the ``/status`` ``ingest``
section, ``repro top`` and SLOs over the recorded history all see queue
pressure; :func:`repro.serve.monitor.run_monitor` wires one in with
``--ingest-queue N --ingest-policy ...``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Iterator

from repro.errors import ValidationError
from repro.obs.metrics import MetricsRegistry

#: Recognized overflow policies, in CLI spelling.
INGEST_POLICIES = ("block", "drop-oldest", "shed")


class IngestQueue:
    """A bounded, closable FIFO handoff with explicit overflow policy.

    ``put`` never grows the buffer past ``maxsize``; ``get`` blocks until
    an item arrives or the queue is closed and drained.  Iterating the
    queue yields items until that drain point — the consumer side of
    :func:`~repro.serve.monitor.run_monitor`'s ingest loop.
    """

    def __init__(
        self,
        maxsize: int,
        policy: str = "block",
        registry: MetricsRegistry | None = None,
        should_abort: Callable[[], bool] | None = None,
    ) -> None:
        if maxsize < 1:
            raise ValidationError(f"maxsize must be >= 1, got {maxsize}")
        if policy not in INGEST_POLICIES:
            raise ValidationError(
                f"unknown ingest policy {policy!r} "
                f"(expected one of {', '.join(INGEST_POLICIES)})"
            )
        self.maxsize = maxsize
        self.policy = policy
        self._items: deque = deque()
        self._cond = threading.Condition()
        self._closed = False
        self.enqueued_total = 0
        self.dropped_total = 0
        self.consumed_total = 0
        self.peak_depth = 0
        self._registry = registry
        #: Polled while a ``block`` put waits, so a stopping monitor can
        #: unwedge a blocked producer without closing the queue first.
        self._should_abort = should_abort or (lambda: False)

    def put(self, item: object, poll: float = 0.05) -> bool:
        """Offer one item; returns False when it was dropped (or aborted).

        Under ``block`` the call waits for space (checking the abort
        hook every ``poll`` seconds); under ``drop-oldest`` the oldest
        queued item is evicted to make room; under ``shed`` a full queue
        refuses the new item.
        """
        with self._cond:
            if self._closed:
                return False
            while len(self._items) >= self.maxsize:
                if self.policy == "drop-oldest":
                    self._items.popleft()
                    self._drop(1)
                    break
                if self.policy == "shed":
                    self._drop(1)
                    return False
                self._cond.wait(poll)
                if self._closed or self._should_abort():
                    return False
            self._items.append(item)
            self.enqueued_total += 1
            self._observe_depth()
            if self._registry is not None:
                self._registry.counter(
                    "monitor.ingest.enqueued_total",
                    help="Blocks accepted into the ingest queue.",
                ).inc()
            self._cond.notify()
            return True

    def get(self, poll: float = 0.05) -> object:
        """Take the next item; raises StopIteration once closed and empty."""
        with self._cond:
            while not self._items:
                if self._closed:
                    raise StopIteration
                self._cond.wait(poll)
                if self._should_abort() and not self._items:
                    raise StopIteration
            item = self._items.popleft()
            self.consumed_total += 1
            self._observe_depth()
            self._cond.notify()
            return item

    def close(self) -> None:
        """No more puts; consumers drain what is buffered, then stop."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def depth(self) -> int:
        """Current number of buffered items (always <= ``maxsize``)."""
        with self._cond:
            return len(self._items)

    def __iter__(self) -> Iterator:
        return self

    def __next__(self) -> object:
        return self.get()

    def _drop(self, n: int) -> None:
        self.dropped_total += n
        if self._registry is not None:
            self._registry.counter(
                "monitor.ingest.dropped_total",
                help="Blocks dropped by the ingest queue overflow policy.",
            ).inc(n)

    def _observe_depth(self) -> None:
        depth = len(self._items)
        if depth > self.peak_depth:
            self.peak_depth = depth
        if self._registry is not None:
            self._registry.gauge(
                "monitor.ingest.queue_depth",
                help="Blocks buffered between the feed and the monitor.",
            ).set(depth)

    def stats(self) -> dict:
        """JSON-ready view for the ``/status`` ``ingest`` section."""
        with self._cond:
            return {
                "policy": self.policy,
                "maxsize": self.maxsize,
                "depth": len(self._items),
                "peak_depth": self.peak_depth,
                "enqueued_total": self.enqueued_total,
                "consumed_total": self.consumed_total,
                "dropped_total": self.dropped_total,
                "closed": self._closed,
            }
