"""Multi-chain comparison (extension).

Generalizes the paper's two-chain §II-C3 comparison to any set of chains
measurable by the engine — e.g. Bitcoin vs Ethereum vs the DPoS extension
chain — producing one table of levels (means) and stability (CV) per
metric, plus per-metric rankings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.study import HIGHER_IS_MORE_DECENTRALIZED
from repro.core.engine import MeasurementEngine
from repro.errors import MeasurementError
from repro.table import Table, concat


@dataclass(frozen=True)
class MetricRanking:
    """Chains ordered from most to least decentralized under one metric."""

    metric: str
    #: Chain names, most decentralized first.
    by_level: tuple[str, ...]
    #: Chain names, most stable (lowest CV) first.
    by_stability: tuple[str, ...]


class MultiChainComparison:
    """Measures a set of chains uniformly and ranks them."""

    def __init__(
        self,
        engines: dict[str, MeasurementEngine],
        metrics: tuple[str, ...] = ("gini", "entropy", "nakamoto"),
        granularity: str = "day",
    ) -> None:
        if len(engines) < 2:
            raise MeasurementError("comparison requires at least two chains")
        unknown = [m for m in metrics if m not in HIGHER_IS_MORE_DECENTRALIZED]
        if unknown:
            raise MeasurementError(
                f"no decentralization direction defined for metrics {unknown}; "
                "use one of " + ", ".join(sorted(HIGHER_IS_MORE_DECENTRALIZED))
            )
        self._engines = dict(engines)
        self._metrics = metrics
        self._granularity = granularity
        self._series = {
            (name, metric): series
            for name, engine in self._engines.items()
            for metric, series in engine.measure_calendar_many(
                metrics, granularity
            ).items()
        }

    def table(self) -> Table:
        """One row per (chain, metric): mean, std, CV, min, max."""
        rows = []
        for (name, metric), series in sorted(self._series.items()):
            rows.append(
                Table(
                    {
                        "chain": [name],
                        "metric": [metric],
                        "mean": [series.mean()],
                        "std": [series.std()],
                        "cv": [series.coefficient_of_variation()],
                        "min": [series.min()],
                        "max": [series.max()],
                    }
                )
            )
        return concat(rows)

    def ranking(self, metric: str) -> MetricRanking:
        """Rank all chains under one metric."""
        if metric not in self._metrics:
            raise MeasurementError(f"metric {metric!r} was not measured")
        higher_wins = HIGHER_IS_MORE_DECENTRALIZED[metric]
        means = {
            name: self._series[(name, metric)].mean() for name in self._engines
        }
        cvs = {
            name: self._series[(name, metric)].coefficient_of_variation()
            for name in self._engines
        }
        by_level = tuple(
            sorted(means, key=lambda n: means[n], reverse=higher_wins)
        )
        by_stability = tuple(sorted(cvs, key=lambda n: cvs[n]))
        return MetricRanking(metric=metric, by_level=by_level, by_stability=by_stability)

    def rankings(self) -> list[MetricRanking]:
        """Rankings for every measured metric."""
        return [self.ranking(metric) for metric in self._metrics]

    def consensus_most_decentralized(self) -> str:
        """The chain ranked first by the majority of metrics."""
        wins: dict[str, int] = {}
        for ranking in self.rankings():
            leader = ranking.by_level[0]
            wins[leader] = wins.get(leader, 0) + 1
        return max(wins, key=lambda name: wins[name])
