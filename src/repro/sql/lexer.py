"""Hand-written SQL lexer.

Produces a list of :class:`~repro.sql.tokens.Token` ending with an ``EOF``
token.  Supports ``--`` line comments, single-quoted strings with ``''``
escaping, double-quoted identifiers, and integer/float literals (with
exponents).
"""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.sql.tokens import (
    EOF,
    IDENT,
    KEYWORD,
    KEYWORDS,
    NUMBER,
    OPERATORS,
    PUNCT,
    PUNCTUATION,
    STRING,
    Token,
)


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL ``text``; raise :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            newline = text.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            value, i = _read_string(text, i)
            tokens.append(Token(STRING, value, i))
            continue
        if ch in ('"', "`"):
            value, i = _read_quoted_ident(text, i, ch)
            tokens.append(Token(IDENT, value, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            value, i = _read_number(text, i)
            tokens.append(Token(NUMBER, value, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(KEYWORD, upper, start))
            else:
                tokens.append(Token(IDENT, word, start))
            continue
        matched_operator = next((op for op in OPERATORS if text.startswith(op, i)), None)
        if matched_operator is not None:
            tokens.append(Token("OPERATOR", matched_operator, i))
            i += len(matched_operator)
            continue
        if ch in PUNCTUATION:
            tokens.append(Token(PUNCT, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(EOF, None, n))
    return tokens


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string starting at ``start``; '' escapes a quote."""
    i = start + 1
    parts: list[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SqlSyntaxError("unterminated string literal", position=start)


def _read_quoted_ident(text: str, start: int, quote: str = '"') -> tuple[str, int]:
    """Read a ``"..."`` or BigQuery-style `` `...` `` quoted identifier."""
    end = text.find(quote, start + 1)
    if end < 0:
        raise SqlSyntaxError("unterminated quoted identifier", position=start)
    name = text[start + 1 : end]
    if not name:
        raise SqlSyntaxError("empty quoted identifier", position=start)
    return name, end + 1


def _read_number(text: str, start: int) -> tuple[int | float, int]:
    i = start
    n = len(text)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < n and text[i] in "+-":
                i += 1
        else:
            break
    literal = text[start:i]
    try:
        if seen_dot or seen_exp:
            return float(literal), i
        return int(literal), i
    except ValueError as exc:
        raise SqlSyntaxError(f"invalid number literal {literal!r}", position=start) from exc
