"""Tests for the miner population."""

import numpy as np
import pytest

from repro.chain.pools import PoolInfo, PoolRegistry
from repro.errors import SimulationError
from repro.simulation.miners import MinerPopulation, TailConfig
from repro.util.rng import derive_rng


@pytest.fixture
def registry() -> PoolRegistry:
    return PoolRegistry(
        [
            PoolInfo("A", "addr-a", 0.5, 0.5),
            PoolInfo("B", "addr-b", 0.3, 0.3),
        ]
    )


def make_population(registry, **overrides) -> MinerPopulation:
    config = {
        "persistent_count": 4,
        "persistent_share": 0.1,
        "singleton_rate_early": 5.0,
        "singleton_rate_late": 1.0,
        "early_period_end": 50,
    }
    config.update(overrides)
    return MinerPopulation("test", registry, TailConfig(**config), seed=7)


class TestTailConfig:
    def test_singleton_rate_regimes(self):
        tail = TailConfig(0, 0.0, 5.0, 1.0, early_period_end=50)
        assert tail.singleton_rate(0) == 5.0
        assert tail.singleton_rate(49) == 5.0
        assert tail.singleton_rate(50) == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"persistent_count": -1},
            {"persistent_share": 1.0},
            {"singleton_rate_early": -1.0},
            {"early_period_end": -1},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        config = {
            "persistent_count": 1,
            "persistent_share": 0.1,
            "singleton_rate_early": 1.0,
            "singleton_rate_late": 1.0,
        }
        config.update(kwargs)
        with pytest.raises(SimulationError):
            TailConfig(**config)


class TestPopulationIdentity:
    def test_entity_layout(self, registry):
        population = make_population(registry)
        assert population.n_pools == 2
        assert population.n_persistent == 4
        assert population.n_entities == 6
        assert population.entity_names[0] == "addr-a"
        assert population.entity_names[2].startswith("test-small-")

    def test_pool_and_persistent_id_ranges(self, registry):
        population = make_population(registry)
        assert population.pool_entity_ids().tolist() == [0, 1]
        assert population.persistent_entity_ids().tolist() == [2, 3, 4, 5]

    def test_mint_singletons_extends_names(self, registry):
        population = make_population(registry)
        ids = population.mint_singletons(day=3, count=2)
        assert ids.tolist() == [6, 7]
        assert population.entity_names[6] == "test-1time-003-00000"

    def test_mint_anomaly_addresses_use_kind(self, registry):
        population = make_population(registry)
        ids = population.mint_singletons(day=13, count=1, kind="cbout")
        assert "cbout" in population.entity_names[int(ids[0])]

    def test_negative_mint_rejected(self, registry):
        with pytest.raises(SimulationError):
            make_population(registry).mint_singletons(0, -1)


class TestProbabilities:
    def test_normalized(self, registry):
        population = make_population(registry)
        probabilities = population.recurring_probabilities(np.asarray([0.5, 0.3]))
        assert probabilities.sum() == pytest.approx(1.0)
        assert probabilities.shape == (6,)

    def test_persistent_share_respected(self, registry):
        population = make_population(registry, persistent_share=0.2)
        probabilities = population.recurring_probabilities(np.asarray([0.5, 0.3]))
        assert probabilities[2:].sum() == pytest.approx(0.2 / (0.8 + 0.2))

    def test_wrong_share_length_rejected(self, registry):
        with pytest.raises(SimulationError):
            make_population(registry).recurring_probabilities(np.asarray([0.5]))

    def test_zero_total_rejected(self, registry):
        population = make_population(registry, persistent_count=0, persistent_share=0.0)
        with pytest.raises(SimulationError):
            population.recurring_probabilities(np.asarray([0.0, 0.0]))


class TestDrawDay:
    def test_draws_correct_count(self, registry):
        population = make_population(registry)
        rng = derive_rng(1, "draw")
        producers = population.draw_day(0, 500, np.asarray([0.5, 0.3]), rng)
        assert producers.shape == (500,)
        assert producers.min() >= 0

    def test_zero_blocks(self, registry):
        population = make_population(registry)
        producers = population.draw_day(0, 0, np.asarray([0.5, 0.3]), derive_rng(1, "d"))
        assert producers.shape == (0,)

    def test_pool_shares_approximately_respected(self, registry):
        population = make_population(
            registry, persistent_count=0, persistent_share=0.0,
            singleton_rate_early=0.0, singleton_rate_late=0.0,
        )
        rng = derive_rng(2, "draw")
        producers = population.draw_day(100, 20_000, np.asarray([0.5, 0.3]), rng)
        share_a = (producers == 0).mean()
        assert share_a == pytest.approx(0.5 / 0.8, abs=0.02)

    def test_singletons_appear_once_each(self, registry):
        population = make_population(registry, singleton_rate_early=20.0)
        rng = derive_rng(3, "draw")
        producers = population.draw_day(0, 200, np.asarray([0.5, 0.3]), rng)
        singles = producers[producers >= 6]
        assert len(singles) > 0
        assert len(set(singles.tolist())) == len(singles)

    def test_share_override_applies_to_masked_blocks(self, registry):
        population = make_population(
            registry, persistent_count=0, persistent_share=0.0,
            singleton_rate_early=0.0, singleton_rate_late=0.0,
        )
        rng = derive_rng(4, "draw")
        n = 10_000
        mask = np.zeros(n, dtype=bool)
        mask[: n // 2] = True
        # First half: pool B dominates 9:1; second half: base shares.
        producers = population.draw_day(
            0, n, np.asarray([0.5, 0.5]), rng,
            share_overrides=[(mask, np.asarray([0.1, 0.9]))],
        )
        first_half_b = (producers[: n // 2] == 1).mean()
        second_half_b = (producers[n // 2 :] == 1).mean()
        assert first_half_b == pytest.approx(0.9, abs=0.03)
        assert second_half_b == pytest.approx(0.5, abs=0.03)

    def test_override_wrong_length_rejected(self, registry):
        population = make_population(registry)
        with pytest.raises(SimulationError):
            population.draw_day(
                0, 10, np.asarray([0.5, 0.3]), derive_rng(0, "d"),
                share_overrides=[(np.zeros(5, dtype=bool), np.asarray([0.5, 0.3]))],
            )
