"""Fig. 12 — Gini coefficient measured in Ethereum using sliding windows.

Paper claims: means ≈ 0.837 / 0.878 / 0.916 for N = 6,000 / 42,000 /
180,000; values quite stable; Ethereum significantly less decentralized
than Bitcoin under the Gini metric.
"""

import pytest

from _bench_util import report_series
from repro.analysis.figures import figure_12


def test_fig12_eth_gini_sliding(benchmark, btc, eth):
    figure = benchmark.pedantic(figure_12, args=(eth,), rounds=1, iterations=1)
    report_series(figure.title, figure.series)

    means = {
        size: figure.series[f"N={size}"].mean() for size in (6000, 42000, 180000)
    }
    assert means[6000] == pytest.approx(0.837, abs=0.05)
    assert means[42000] == pytest.approx(0.878, abs=0.05)
    assert means[180000] == pytest.approx(0.916, abs=0.05)
    assert means[6000] < means[42000] < means[180000]

    daily = figure.series["N=6000"]
    btc_daily = btc.measure_sliding("gini", 144)
    assert daily.mean() > btc_daily.mean()  # less decentralized than BTC
    assert daily.std() < btc_daily.std()    # but more stable
