"""Module-level worker functions executed inside :class:`WorkerPool` workers.

Every function here runs in a worker process: it must be picklable (hence
module-level), read its large inputs from :func:`repro.parallel.pool.
worker_payload`, and return plain numpy arrays / tuples that the
coordinator merges **in shard order**.  None of them may mutate the
payload — under the ``fork`` start method it is shared copy-on-write with
the coordinator and the other workers.

The shard functions are deliberately thin wrappers around the exact
numpy expressions the serial code paths use, restricted to a contiguous
slice; byte-identity of the merged result then follows from the slicing
argument documented at each call site (see ``docs/PARALLELISM.md``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.parallel import pool as _pool

# -- engine: per-window distributions ------------------------------------------


def distribution_shard(pairs: list[tuple[int, int]]) -> list[np.ndarray]:
    """Distributions for a shard of credit-row ranges.

    Payload: a :class:`~repro.chain.attribution.Credits`.  Each ``(lo, hi)``
    pair is one window's credit-row range; the exact same
    ``Credits.distribution`` call the serial sweep makes runs here, so each
    returned array is bitwise equal to its serial counterpart.
    """
    credits = _pool.worker_payload()
    return [credits.distribution(lo, hi) for lo, hi in pairs]


# -- credits: segment partial histograms ---------------------------------------


def segment_histogram_shard(step: int, seg_lo: int, seg_hi: int) -> np.ndarray:
    """Per-segment entity histograms for segments ``[seg_lo, seg_hi)``.

    Payload: a :class:`~repro.chain.attribution.Credits`.  Mirrors the
    dense ``np.bincount`` in ``Credits.segment_histograms`` over just the
    credit rows of this segment range.  Because every histogram cell
    belongs to exactly one segment — hence one shard — and rows keep their
    block order inside the shard, each cell accumulates the same addends
    in the same order as the serial full-range bincount: the concatenated
    shard matrices are bitwise equal to the serial matrix.
    """
    credits = _pool.worker_payload()
    n_entities = credits.n_entities
    row_lo = int(credits.block_offsets[seg_lo * step])
    row_hi = int(credits.block_offsets[seg_hi * step])
    segment_of = credits.block_positions[row_lo:row_hi] // step - seg_lo
    keys = segment_of * n_entities + credits.entity_ids[row_lo:row_hi]
    return np.bincount(
        keys,
        weights=credits.weights[row_lo:row_hi],
        minlength=(seg_hi - seg_lo) * n_entities,
    ).reshape(seg_hi - seg_lo, n_entities)


# -- attribution: per-policy block-range shards --------------------------------


def attribution_shard(
    policy: str, lo: int, hi: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Credit arrays for block positions ``[lo, hi)`` under ``policy``.

    Payload: ``(chain, remap)`` where ``remap`` is the pool-policy
    producer-to-entity id table built on the coordinator (``None`` for the
    other policies — entity name spaces must be constructed sequentially
    to preserve first-appearance ids, so that step never shards).

    Returns ``(entity_ids, weights, block_positions, timestamps)`` for the
    shard's credit rows.  Every array is the restriction of the serial
    whole-chain expression to this block range — ``np.repeat`` over a
    sliced ``counts`` equals the slice of ``np.repeat`` over the full
    ``counts`` — so concatenating shards in order is bitwise equal to the
    serial arrays.
    """
    chain, remap = _pool.worker_payload()
    counts = chain.producer_counts()[lo:hi]
    if policy in ("per-address", "fractional"):
        row_lo = int(chain.offsets[lo])
        row_hi = int(chain.offsets[hi])
        entity_ids = chain.producer_ids[row_lo:row_hi].copy()
        if policy == "per-address":
            weights = np.ones(row_hi - row_lo, dtype=np.float64)
        else:
            weights = np.repeat(1.0 / counts.astype(np.float64), counts)
        block_positions = np.repeat(np.arange(lo, hi, dtype=np.int64), counts)
        timestamps = np.repeat(chain.timestamps[lo:hi], counts)
        return entity_ids, weights, block_positions, timestamps
    # first-address / pool: one credit per block.
    first_ids = chain.producer_ids[chain.offsets[lo:hi]]
    entity_ids = remap[first_ids] if remap is not None else first_ids.copy()
    return (
        entity_ids,
        np.ones(hi - lo, dtype=np.float64),
        np.arange(lo, hi, dtype=np.int64),
        chain.timestamps[lo:hi].copy(),
    )


# -- sql: partial aggregates over row partitions -------------------------------


def sql_partial_aggregate(lo: int, hi: int, funcs: tuple) -> dict:
    """Partition-local group-by partials over rows ``[lo, hi)``.

    Payload: ``(key_arrays, agg_arrays)`` — the already-evaluated GROUP BY
    key columns and aggregate argument columns (``None`` for ``COUNT(*)``),
    full-length; the worker scans only its slice (the partitioned columnar
    scan).  ``funcs`` holds one aggregate function name per entry of
    ``agg_arrays`` (``COUNT``, ``SUM``, ``AVG``, ``MIN`` or ``MAX``).

    Returns the partition's group keys in local first-appearance order plus
    mergeable partial states per aggregate; the coordinator's in-order
    merge reconstructs the serial group numbering (see
    ``_parallel_aggregation`` in :mod:`repro.sql.executor`).
    """
    from repro.table.aggregates import grouped_aggregate

    key_arrays, agg_arrays = _pool.worker_payload()
    scan_start = time.perf_counter()
    local_keys = [a[lo:hi] for a in key_arrays]
    local_args = [None if a is None else a[lo:hi] for a in agg_arrays]
    scan_seconds = time.perf_counter() - scan_start
    agg_start = time.perf_counter()
    group_ids, group_keys = _factorize_local(local_keys)
    n_groups = len(group_keys)
    partials: list = []
    for func, values in zip(funcs, local_args):
        if values is None:  # COUNT(*)
            partials.append(np.bincount(group_ids, minlength=n_groups).astype(np.int64))
        elif func == "COUNT":
            rows = np.flatnonzero(~_null_mask(values))
            partials.append(
                np.bincount(group_ids[rows], minlength=n_groups).astype(np.int64)
            )
        elif func == "SUM":
            partials.append(
                np.bincount(
                    group_ids,
                    weights=values.astype(np.float64),
                    minlength=n_groups,
                )
            )
        elif func == "AVG":
            sums = np.bincount(
                group_ids, weights=values.astype(np.float64), minlength=n_groups
            )
            counts = np.bincount(group_ids, minlength=n_groups).astype(np.int64)
            partials.append((sums, counts))
        elif func in ("MIN", "MAX"):
            partials.append(
                grouped_aggregate(values, group_ids, n_groups, func.lower())
            )
        else:  # pragma: no cover - guarded by the coordinator's eligibility check
            raise ValueError(f"aggregate {func!r} has no mergeable partial")
    return {
        "keys": group_keys,
        "partials": partials,
        "rows": hi - lo,
        "scan_seconds": scan_seconds,
        "agg_seconds": time.perf_counter() - agg_start,
    }


def _factorize_local(key_arrays: list[np.ndarray]) -> tuple[np.ndarray, list[tuple]]:
    """Group ids in first-appearance order plus the key tuple per group.

    Mirrors the executor's ``_factorize`` semantics (groups numbered by
    first appearance) so the coordinator's partition-order merge assigns
    the same global numbering the serial path would.
    """
    combos = list(zip(*[a.tolist() for a in key_arrays]))
    mapping: dict = {}
    ids = np.empty(len(combos), dtype=np.int64)
    for i, combo in enumerate(combos):
        gid = mapping.get(combo)
        if gid is None:
            gid = len(mapping)
            mapping[combo] = gid
        ids[i] = gid
    return ids, list(mapping)


def _null_mask(values: np.ndarray) -> np.ndarray:
    """SQL-NULL mask matching the executor's ``_is_null`` for arrays."""
    if values.dtype == object:
        return np.asarray([v is None for v in values], dtype=bool)
    if np.issubdtype(values.dtype, np.floating):
        return np.isnan(values)
    return np.zeros(values.shape[0], dtype=bool)


# -- fork-safety probe ---------------------------------------------------------


def worker_probe() -> dict:
    """Report the worker's inherited-state surface (used by fork-safety tests).

    ``tracing_enabled`` is True only while the task runs under a per-task
    child tracer (coordinator tracing on → context propagated); the
    ``tracer_spans`` count covers *recorded* spans, which must be zero
    either way — a worker never inherits the coordinator's history, and a
    child tracer starts fresh for every task.
    """
    import os
    import threading

    from repro import obs

    tracer = obs.get_tracer()
    return {
        "in_worker": _pool.in_worker(),
        "tracing_enabled": obs.tracing_enabled(),
        "tracer_spans": len(tracer.spans),
        "trace_id": tracer.trace_id if obs.tracing_enabled() else None,
        "thread_count": threading.active_count(),
        "pid": os.getpid(),
    }
