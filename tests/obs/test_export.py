"""Tests for trace exporters, loaders and schema validation."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.export import (
    TRACE_FORMAT_VERSION,
    load_trace_file,
    to_chrome_trace,
    to_jsonl_records,
    validate_trace_file,
    write_trace,
)
from repro.obs.tracer import Tracer


@pytest.fixture
def traced():
    """A tracer with a small nested trace plus metrics recorded."""
    tracer = Tracer().enable()
    with tracer.span("sweep", chain="btc"):
        with tracer.span("window"):
            pass
        with tracer.span("window"):
            pass
    tracer.counter("cache.hit", 3)
    tracer.gauge("depth", 2.0)
    tracer.timing("build", 0.125)
    tracer.disable()
    return tracer


class TestJsonl:
    def test_meta_record_first(self, traced):
        records = to_jsonl_records(traced)
        assert records[0]["type"] == "meta"
        assert records[0]["version"] == TRACE_FORMAT_VERSION
        assert records[0]["n_spans"] == 3

    def test_round_trip(self, traced, tmp_path):
        path = write_trace(traced, tmp_path / "t.jsonl")
        spans, metrics = load_trace_file(path)
        assert [s.name for s in spans] == [s.name for s in traced.spans]
        assert [s.parent_id for s in spans] == [s.parent_id for s in traced.spans]
        assert metrics["counters"] == {"cache.hit": 3.0}
        assert metrics["gauges"] == {"depth": 2.0}
        assert metrics["timings"]["build"]["count"] == 1

    def test_attrs_survive(self, traced, tmp_path):
        path = write_trace(traced, tmp_path / "t.jsonl")
        spans, _ = load_trace_file(path)
        sweep = next(s for s in spans if s.name == "sweep")
        assert sweep.attrs == {"chain": "btc"}


class TestChrome:
    def test_events_are_complete_events_in_microseconds(self, traced):
        document = to_chrome_trace(traced)
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 3
        for event, span in zip(xs, traced.spans):
            assert event["ts"] == pytest.approx(span.start * 1e6)
            assert event["dur"] == pytest.approx(span.duration * 1e6)
            assert event["args"]["span_id"] == span.span_id

    def test_counters_ride_as_c_events(self, traced):
        document = to_chrome_trace(traced)
        cs = [e for e in document["traceEvents"] if e["ph"] == "C"]
        assert cs and cs[0]["args"] == {"cache.hit": 3.0}

    def test_round_trip(self, traced, tmp_path):
        path = write_trace(traced, tmp_path / "t.json")
        spans, metrics = load_trace_file(path)
        by_id = {s.span_id: s for s in spans}
        windows = [s for s in spans if s.name == "window"]
        assert len(windows) == 2
        assert all(by_id[w.parent_id].name == "sweep" for w in windows)
        assert metrics["counters"] == {"cache.hit": 3.0}
        assert metrics["timings"]["build"]["count"] == 1

    def test_loadable_as_plain_json(self, traced, tmp_path):
        path = write_trace(traced, tmp_path / "t.json")
        document = json.loads(path.read_text())
        assert isinstance(document["traceEvents"], list)
        assert document["otherData"]["format"] == "repro-trace"


class TestValidation:
    def test_valid_files_summarize(self, traced, tmp_path):
        for name, fmt in (("t.jsonl", "jsonl"), ("t.json", "chrome")):
            path = write_trace(traced, tmp_path / name)
            summary = validate_trace_file(path)
            assert summary["format"] == fmt
            assert summary["n_spans"] == 3
            assert summary["n_counters"] == 1
            assert summary["n_gauges"] == 1
            assert summary["n_timings"] == 1

    def test_missing_file(self, tmp_path):
        with pytest.raises(ObservabilityError, match="no trace file"):
            load_trace_file(tmp_path / "absent.json")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(ObservabilityError, match="empty"):
            load_trace_file(path)

    def test_bad_jsonl_line_reports_lineno(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(ObservabilityError, match=":2"):
            load_trace_file(path)

    def test_jsonl_span_missing_keys(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "span", "id": 1, "name": "x"}\n')
        with pytest.raises(ObservabilityError, match="missing keys"):
            load_trace_file(path)

    def test_jsonl_unknown_record_type(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ObservabilityError, match="unknown record type"):
            load_trace_file(path)

    def test_chrome_without_trace_events(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text('{"traceEvents": 5}')
        with pytest.raises(ObservabilityError, match="traceEvents"):
            validate_trace_file(path)

    def test_chrome_event_missing_keys(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"traceEvents": [{"name": "x", "ph": "X"}]}))
        with pytest.raises(ObservabilityError, match="missing keys"):
            validate_trace_file(path)

    def test_negative_duration_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record = {
            "type": "span", "id": 1, "parent": None,
            "name": "x", "start": 0.0, "dur": -1.0,
        }
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ObservabilityError, match="negative duration"):
            validate_trace_file(path)

    def test_dangling_parent_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record = {
            "type": "span", "id": 1, "parent": 99,
            "name": "x", "start": 0.0, "dur": 1.0,
        }
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ObservabilityError, match="unknown parent"):
            validate_trace_file(path)
