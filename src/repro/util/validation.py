"""Small validation helpers used across the library.

Each helper raises :class:`repro.errors.ValidationError` with a message that
names the offending parameter, so call sites stay one-liners.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ValidationError


def ensure_positive(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number > 0, else raise."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a number, got {type(value).__name__}")
    if not np.isfinite(value) or value <= 0:
        raise ValidationError(f"{name} must be positive and finite, got {value!r}")
    return float(value)


def ensure_positive_int(value: Any, name: str) -> int:
    """Return ``value`` as ``int`` if it is an integer > 0, else raise."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)


def ensure_probability(value: float, name: str) -> float:
    """Return ``value`` if it lies in the closed interval [0, 1], else raise."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a number, got {type(value).__name__}")
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def ensure_in_range(value: float, low: float, high: float, name: str) -> float:
    """Return ``value`` if ``low <= value <= high``, else raise."""
    if not low <= value <= high:
        raise ValidationError(f"{name} must be in [{low}, {high}], got {value!r}")
    return float(value)


def ensure_block_height(value: Any, context: str = "block",
                        exc: type[Exception] = ValidationError) -> int:
    """Return ``value`` as an ``int`` height > 0, else raise ``exc``.

    Real chains in the study start far above height 0 (Bitcoin 2019 opens
    at 556,459), so a non-positive height is always ingestion corruption,
    not genesis — reject it at construction instead of letting it surface
    as a wrong distribution deep in attribution.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise exc(f"{context}: height must be an integer, "
                  f"got {type(value).__name__}")
    if value <= 0:
        raise exc(f"{context}: height must be positive, got {value}")
    return int(value)


def ensure_producers(producers: Any, context: str = "block",
                     exc: type[Exception] = ValidationError) -> tuple[str, ...]:
    """Return ``producers`` as a non-empty tuple of non-empty strings.

    An empty coinbase address list makes a block unattributable; catching
    it here gives the caller a typed error naming the block instead of a
    divide-by-zero or a silently missing credit row later.
    """
    resolved = tuple(producers)
    if not resolved:
        raise exc(f"{context}: empty producer (coinbase address) list")
    for producer in resolved:
        if not isinstance(producer, str) or not producer:
            raise exc(f"{context}: invalid producer address {producer!r}")
    return resolved


def ensure_nonnegative_array(values: Any, name: str) -> np.ndarray:
    """Coerce ``values`` to a 1-D float array of non-negative finite numbers."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional, got shape {array.shape}")
    if array.size and (not np.all(np.isfinite(array)) or np.any(array < 0)):
        raise ValidationError(f"{name} must contain only non-negative finite numbers")
    return array
