"""Performance — the sharded multi-core execution layer.

Three claims, measured:

* **Scaling** — ETH attribution and the BTC calendar sweep at 1..4
  workers; the per-worker-count seconds, blocks/s and speedup-vs-serial
  land in ``extra_info["scaling"]`` so ``BENCH_pipeline.json`` (and the
  ``bench-diff`` gate) carry the curve alongside the headline medians.
* **Speedup** — on multi-core hardware the 4-worker run must actually be
  faster (>= 1.7x with 4+ cores); skipped on single-core hosts, where
  forced oversubscription cannot win.
* **Auto overhead** — ``workers="auto"`` on a single-core host resolves
  to 1 and must take the serial fast path: no pool is ever created, and
  the residual guard cost (one ``resolve_workers`` + shard-eligibility
  check per sweep) stays under 2% of sweep time, measured the same way
  ``bench_perf_obs.py`` bounds disabled-tracing overhead.
"""

import os
import time

import pytest

from repro.chain.attribution import attribute
from repro.parallel import pool_status, resolve_workers

MAX_WORKERS = 4

#: Required 4-worker speedup over serial, by available parallelism.
SPEEDUP_FLOOR_4CORE = 1.7
SPEEDUP_FLOOR_2CORE = 1.2

#: Maximum tolerated serial-path guard cost, as a fraction of sweep time.
OVERHEAD_BUDGET = 0.02

#: Safety factor on the measured guard-call cost.
GUARD_MARGIN = 10.0


def _scaling_curve(run, units: int) -> dict:
    """Time ``run(workers)`` for 1..MAX_WORKERS; one timed call each."""
    curve: dict[str, dict] = {}
    serial_seconds = None
    for workers in range(1, MAX_WORKERS + 1):
        start = time.perf_counter()
        run(workers)
        seconds = time.perf_counter() - start
        if serial_seconds is None:
            serial_seconds = seconds
        curve[str(workers)] = {
            "seconds": round(seconds, 6),
            "units_per_second": round(units / seconds, 1),
            "speedup_vs_serial": round(serial_seconds / seconds, 3),
        }
    return curve


def test_perf_parallel_eth_attribution_scaling(benchmark, study):
    """ETH per-address attribution, sharded across block ranges."""
    chain = study.chain("eth")
    workers = min(MAX_WORKERS, resolve_workers("auto"))
    credits = benchmark.pedantic(
        attribute, args=(chain,), kwargs={"workers": workers},
        rounds=5, iterations=1, warmup_rounds=1,
    )
    assert credits.n_credits == 2_204_650
    benchmark.extra_info["cpu_count"] = os.cpu_count() or 1
    benchmark.extra_info["benchmarked_workers"] = workers
    benchmark.extra_info["scaling"] = _scaling_curve(
        lambda w: attribute(chain, workers=w), units=chain.n_blocks
    )


def test_perf_parallel_btc_calendar_sweep_scaling(benchmark, btc):
    """The figure-suite calendar sweep, windows sharded across workers."""
    metrics = ("gini", "entropy", "nakamoto")
    workers = min(MAX_WORKERS, resolve_workers("auto"))

    def sweep(w):
        return btc.measure_calendar_many(metrics, "day", workers=w)

    series = benchmark.pedantic(
        sweep, args=(workers,), rounds=5, iterations=1, warmup_rounds=1
    )
    assert len(series["gini"]) == 365
    benchmark.extra_info["cpu_count"] = os.cpu_count() or 1
    benchmark.extra_info["benchmarked_workers"] = workers
    benchmark.extra_info["scaling"] = _scaling_curve(
        sweep, units=btc.credits.n_blocks
    )


def test_perf_parallel_sql_groupby(benchmark, study):
    """The BigQuery-style group-by through the partitioned operators."""
    from repro.sql import QueryEngine, format_plan

    table = study.chain("btc").to_table()
    engine = QueryEngine({"credits": table}, workers=2)

    def run_query():
        return engine.execute(
            "SELECT producer, COUNT(*) AS n FROM credits "
            "GROUP BY producer ORDER BY n DESC LIMIT 20"
        )

    result = benchmark(run_query)
    assert result.num_rows == 20
    # Prove the timed path was the partitioned one, not the serial fallback.
    _, root = engine.explain_analyze(
        "SELECT producer, COUNT(*) AS n FROM credits GROUP BY producer"
    )
    assert "ParallelScan" in format_plan(root)


def test_parallel_speedup_on_multicore(study):
    """Real cores must buy real wall-clock; meaningless when oversubscribed."""
    cpus = os.cpu_count() or 1
    if cpus < 2:
        pytest.skip("single-core host: parallel speedup is not expected")
    chain = study.chain("eth")
    attribute(chain)  # warm the simulation caches
    start = time.perf_counter()
    attribute(chain)
    serial = time.perf_counter() - start
    start = time.perf_counter()
    attribute(chain, workers=MAX_WORKERS)
    parallel = time.perf_counter() - start
    floor = SPEEDUP_FLOOR_4CORE if cpus >= MAX_WORKERS else SPEEDUP_FLOOR_2CORE
    speedup = serial / parallel
    assert speedup >= floor, (
        f"{MAX_WORKERS} workers on {cpus} cores: {speedup:.2f}x "
        f"(serial {serial * 1e3:.0f}ms, parallel {parallel * 1e3:.0f}ms), "
        f"below the {floor:.1f}x floor"
    )


def test_auto_workers_overhead_under_budget(btc):
    """On a single-core host ``workers='auto'`` must cost (almost) nothing.

    Two halves: (a) the sweep under ``auto`` creates no pool at all —
    checked against the lifetime pool counters; (b) the guard work the
    serial path did gain (resolving ``auto`` and deciding not to shard)
    is bounded at well under 2% of the sweep, the same budget-style bound
    ``bench_perf_obs.py`` places on disabled tracing.
    """
    if resolve_workers("auto") != 1:
        pytest.skip("multi-core host: auto legitimately builds pools")

    def sweep():
        return btc.measure_calendar_many(("gini", "entropy"), "day", workers="auto")

    sweep()  # warm caches
    before = pool_status()["lifetime"]["pools_created"]
    start = time.perf_counter()
    sweep()
    sweep_seconds = time.perf_counter() - start
    assert pool_status()["lifetime"]["pools_created"] == before

    calls = 10_000
    start = time.perf_counter()
    for _ in range(calls):
        resolve_workers("auto")
    guard_seconds = (time.perf_counter() - start) / calls

    # A sweep resolves workers a handful of times; margin it by 10x.
    overhead = guard_seconds * GUARD_MARGIN
    budget = OVERHEAD_BUDGET * sweep_seconds
    assert overhead < budget, (
        f"auto-workers guard would cost {overhead * 1e6:.1f}us per sweep "
        f"({guard_seconds * 1e9:.0f}ns per resolve x{GUARD_MARGIN:.0f} margin), "
        f"over the 2% budget of {budget * 1e6:.1f}us "
        f"(sweep {sweep_seconds * 1e3:.1f}ms)"
    )
