"""Event timeline: anomalies and trend shifts, merged across metrics.

The paper's operational goal for sliding windows is to "discover special
or abnormal changes of the degree of decentralization in a more timely
manner".  An event timeline is what a monitoring deployment of this
library would emit: per chain, every point outlier (IQR rule) and every
persistent shift (CUSUM), across all three paper metrics, in time order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.anomaly import iqr_anomalies
from repro.core.changepoint import cusum_changepoints
from repro.core.engine import MeasurementEngine


@dataclass(frozen=True)
class Event:
    """One detected event on one metric's series."""

    chain: str
    metric: str
    #: ``outlier`` (point anomaly), ``shift-up`` or ``shift-down``.
    kind: str
    #: Position within the measured series.
    position: int
    label: str
    #: Outliers: the anomalous value; shifts: the CUSUM magnitude.
    value: float

    def __str__(self) -> str:
        return (
            f"[{self.label}] {self.chain}/{self.metric}: {self.kind} "
            f"(value={self.value:.4f})"
        )


def event_timeline(
    engine: MeasurementEngine,
    metrics: tuple[str, ...] = ("gini", "entropy", "nakamoto"),
    granularity: str = "day",
    iqr_k: float = 1.5,
    cusum_threshold: float = 4.0,
    cusum_drift: float = 0.4,
) -> list[Event]:
    """Detect and merge events across ``metrics``; sorted by position."""
    events: list[Event] = []
    sweep = engine.measure_calendar_many(metrics, granularity)
    for metric in metrics:
        series = sweep[metric]
        outliers = iqr_anomalies(series, k=iqr_k)
        for position, label, value in zip(
            outliers.positions, outliers.labels, outliers.values
        ):
            events.append(
                Event(
                    chain=series.chain_name,
                    metric=metric,
                    kind="outlier",
                    position=position,
                    label=label,
                    value=value,
                )
            )
        shifts = cusum_changepoints(
            series, threshold=cusum_threshold, drift=cusum_drift
        )
        for point in shifts.points:
            events.append(
                Event(
                    chain=series.chain_name,
                    metric=metric,
                    kind="shift-up" if point.direction > 0 else "shift-down",
                    position=point.position,
                    label=point.label,
                    value=point.magnitude,
                )
            )
    return sorted(events, key=lambda e: (e.position, e.metric, e.kind))


def coincident_events(events: list[Event], min_metrics: int = 2) -> list[list[Event]]:
    """Group same-position events; keep groups spanning >= ``min_metrics``.

    A date flagged by several metrics at once (like the paper's day 14,
    extreme under Gini, entropy *and* Nakamoto) is far stronger evidence
    than a single-metric blip.
    """
    by_position: dict[int, list[Event]] = {}
    for event in events:
        by_position.setdefault(event.position, []).append(event)
    groups = []
    for position in sorted(by_position):
        group = by_position[position]
        if len({event.metric for event in group}) >= min_metrics:
            groups.append(group)
    return groups
