"""Block-count allocation and timestamp generation.

The datasets must contain *exactly* the paper's block counts (54,231 and
2,204,650), so daily counts are drawn as one multinomial over the relative
daily rates — Poisson-like day-to-day variation with an exact total — and
timestamps are uniform within each day, sorted.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.util.timeutils import SECONDS_PER_DAY, day_start


def allocate_daily_counts(
    total_blocks: int,
    daily_rates: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Split ``total_blocks`` across days proportionally to ``daily_rates``.

    Returns an int array summing exactly to ``total_blocks``.
    """
    rates = np.asarray(daily_rates, dtype=np.float64)
    if rates.ndim != 1 or rates.size == 0:
        raise SimulationError("daily_rates must be a non-empty 1-D array")
    if np.any(rates <= 0) or not np.all(np.isfinite(rates)):
        raise SimulationError("daily_rates must be positive and finite")
    if total_blocks < 0:
        raise SimulationError(f"total_blocks must be >= 0, got {total_blocks}")
    probabilities = rates / rates.sum()
    counts = rng.multinomial(total_blocks, probabilities)
    return counts.astype(np.int64)


def draw_timestamps_for_day(
    day: int,
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """``count`` sorted Unix timestamps uniform in 2019 day ``day``.

    Uniform order statistics within the day approximate a Poisson
    process's arrival times conditioned on the day's block count.
    """
    if count < 0:
        raise SimulationError(f"count must be >= 0, got {count}")
    start = day_start(day)
    timestamps = rng.integers(start, start + SECONDS_PER_DAY, size=count, dtype=np.int64)
    timestamps.sort()
    return timestamps
