"""Tests for CSV/JSONL round-trips."""

import pytest

from repro.errors import TableError
from repro.table import Table, read_csv, read_jsonl, write_csv, write_jsonl
from repro.table.schema import Schema


@pytest.fixture
def table() -> Table:
    return Table(
        {
            "height": [1, 2, 3],
            "miner": ["a", "b,with,commas", 'c"quoted"'],
            "reward": [12.5, 6.25, 6.25],
            "valid": [True, False, True],
        }
    )


class TestCsv:
    def test_roundtrip_inferred(self, table, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        assert read_csv(path) == table

    def test_roundtrip_with_schema(self, table, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        out = read_csv(path, schema=table.schema)
        assert out == table

    def test_schema_subset_selects_columns(self, table, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        out = read_csv(path, schema=Schema([("height", "int")]))
        assert out.column_names == ("height",)

    def test_schema_missing_column_raises(self, table, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        with pytest.raises(TableError):
            read_csv(path, schema=Schema([("nope", "int")]))

    def test_numeric_looking_strings_infer_as_int(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1\n2\n")
        assert read_csv(path).column("a").kind == "int"

    def test_mixed_infers_as_str(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1\nx\n")
        assert read_csv(path).column("a").kind == "str"

    def test_float_inference(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1.5\n2\n")
        assert read_csv(path).column("a").kind == "float"

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        with pytest.raises(TableError):
            read_csv(path)

    def test_ragged_row_raises(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(TableError):
            read_csv(path)


class TestJsonl:
    def test_roundtrip(self, table, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(table, path)
        assert read_jsonl(path) == table

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n')
        assert read_jsonl(path).num_rows == 2

    def test_invalid_json_raises_with_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\nnot-json\n')
        with pytest.raises(TableError, match=":2"):
            read_jsonl(path)

    def test_non_object_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(TableError):
            read_jsonl(path)
