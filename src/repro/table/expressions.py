"""Vectorized column expressions for readable table filters.

``col("height") > 100`` builds an expression tree; calling it on a table (or
passing it to :meth:`Table.filter`, which accepts callables) evaluates it
against the table's columns:

>>> from repro.table import Table, col
>>> t = Table({"h": [1, 2, 3], "m": ["a", "b", "a"]})
>>> t.filter((col("h") >= 2) & (col("m") == "a")).to_rows()
[{'h': 3, 'm': 'a'}]
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import TableError


class Expression:
    """A node in a vectorized expression tree.

    Expressions are callables: ``expr(table)`` returns a numpy array.
    """

    def __init__(self, fn: Callable[[Any], np.ndarray], description: str) -> None:
        self._fn = fn
        self._description = description

    def __call__(self, table: Any) -> np.ndarray:
        return self._fn(table)

    def __repr__(self) -> str:
        return f"Expression({self._description})"

    # -- comparisons --------------------------------------------------------

    def __eq__(self, other: Any) -> "Expression":  # type: ignore[override]
        return self._binary(other, np.equal, "==", string_ok=True)

    def __ne__(self, other: Any) -> "Expression":  # type: ignore[override]
        return self._binary(other, np.not_equal, "!=", string_ok=True)

    def __lt__(self, other: Any) -> "Expression":
        return self._binary(other, np.less, "<")

    def __le__(self, other: Any) -> "Expression":
        return self._binary(other, np.less_equal, "<=")

    def __gt__(self, other: Any) -> "Expression":
        return self._binary(other, np.greater, ">")

    def __ge__(self, other: Any) -> "Expression":
        return self._binary(other, np.greater_equal, ">=")

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: Any) -> "Expression":
        return self._binary(other, np.add, "+")

    def __sub__(self, other: Any) -> "Expression":
        return self._binary(other, np.subtract, "-")

    def __mul__(self, other: Any) -> "Expression":
        return self._binary(other, np.multiply, "*")

    def __truediv__(self, other: Any) -> "Expression":
        return self._binary(other, np.divide, "/")

    def __mod__(self, other: Any) -> "Expression":
        return self._binary(other, np.mod, "%")

    def __neg__(self) -> "Expression":
        return Expression(lambda t: -self(t), f"-({self._description})")

    # -- boolean combinators --------------------------------------------------

    def __and__(self, other: Any) -> "Expression":
        return self._binary(other, np.logical_and, "&", string_ok=True)

    def __or__(self, other: Any) -> "Expression":
        return self._binary(other, np.logical_or, "|", string_ok=True)

    def __invert__(self) -> "Expression":
        return Expression(lambda t: np.logical_not(self(t)), f"~({self._description})")

    # -- convenience predicates -----------------------------------------------

    def isin(self, values: Any) -> "Expression":
        """Membership test against a collection of scalars."""
        allowed = set(values)

        def fn(table: Any) -> np.ndarray:
            evaluated = self(table)
            if evaluated.dtype == object:
                return np.asarray([v in allowed for v in evaluated], dtype=bool)
            return np.isin(evaluated, list(allowed))

        return Expression(fn, f"({self._description}).isin(...)")

    def between(self, low: Any, high: Any) -> "Expression":
        """Closed-interval range test: ``low <= value <= high``."""
        return (self >= low) & (self <= high)

    # -- internals ------------------------------------------------------------

    def _binary(
        self,
        other: Any,
        op: Callable[[Any, Any], np.ndarray],
        symbol: str,
        string_ok: bool = False,
    ) -> "Expression":
        other_expr = other if isinstance(other, Expression) else lit(other)

        def fn(table: Any) -> np.ndarray:
            left = self(table)
            right = other_expr(table)
            if not string_ok and (getattr(left, "dtype", None) == object
                                  or getattr(right, "dtype", None) == object):
                raise TableError(f"operator {symbol!r} is not defined for string columns")
            return op(left, right)

        return Expression(fn, f"({self._description} {symbol} {other_expr._description})")


def col(name: str) -> Expression:
    """Reference a table column by name."""

    def fn(table: Any) -> np.ndarray:
        return table[name]

    return Expression(fn, name)


def lit(value: Any) -> Expression:
    """A literal scalar usable on either side of an expression."""

    def fn(_table: Any) -> Any:
        return value

    return Expression(fn, repr(value))
