"""repro — measuring decentralization in Bitcoin and Ethereum.

A full reproduction of *"Measuring Decentralization in Bitcoin and
Ethereum using Multiple Metrics and Granularities"* (ICDE 2021): the three
decentralization metrics (Gini, Shannon entropy, Nakamoto coefficient),
fixed calendar and sliding block windows, a calibrated PoW mining
simulator standing in for the paper's BigQuery datasets, and the analysis
layer that regenerates every figure of the paper.

Quickstart
----------
>>> from repro import DecentralizationStudy
>>> study = DecentralizationStudy()                      # doctest: +SKIP
>>> fig9 = study.figure(9)                               # doctest: +SKIP
>>> fig9.series["N=144"].mean()                          # doctest: +SKIP
3.88
"""

from repro.analysis import DecentralizationStudy, FigureResult, StudyFindings
from repro.chain import (
    BITCOIN,
    Block,
    Chain,
    ChainSpec,
    Credits,
    ETHEREUM,
    PoolRegistry,
    attribute,
)
from repro.core import (
    MeasurementEngine,
    MeasurementSeries,
    SeriesSummary,
    summarize,
)
from repro.errors import ReproError
from repro.metrics import (
    gini_coefficient,
    nakamoto_coefficient,
    shannon_entropy,
)
from repro.simulation import simulate_bitcoin_2019, simulate_ethereum_2019
from repro.windows import FixedCalendarWindows, SlidingBlockWindows

__version__ = "1.5.0"

__all__ = [
    "BITCOIN",
    "Block",
    "Chain",
    "ChainSpec",
    "Credits",
    "DecentralizationStudy",
    "ETHEREUM",
    "FigureResult",
    "FixedCalendarWindows",
    "MeasurementEngine",
    "MeasurementSeries",
    "PoolRegistry",
    "ReproError",
    "SeriesSummary",
    "SlidingBlockWindows",
    "StudyFindings",
    "attribute",
    "gini_coefficient",
    "nakamoto_coefficient",
    "shannon_entropy",
    "simulate_bitcoin_2019",
    "simulate_ethereum_2019",
    "summarize",
    "__version__",
]
