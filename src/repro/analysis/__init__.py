"""Study orchestration: the paper's figures and findings as library calls.

:class:`DecentralizationStudy` owns the two simulated 2019 chains and
produces every figure of the paper as a :class:`FigureResult` (data series,
not pixels), plus the headline comparative findings of §II-C3.
"""

from repro.analysis.correlation import (
    ConsistencyReport,
    SlidingAgreement,
    fixed_vs_sliding_agreement,
    granularity_consistency,
    pearson_correlation,
    spearman_correlation,
)
from repro.analysis.distribution import DistributionSlice, producer_shares
from repro.analysis.events import Event, coincident_events, event_timeline
from repro.analysis.figures import FIGURE_IDS, FigureResult
from repro.analysis.multichain import MetricRanking, MultiChainComparison
from repro.analysis.report import generate_report
from repro.analysis.stability import StabilityReport, stability_report
from repro.analysis.study import DecentralizationStudy, StudyFindings

__all__ = [
    "ConsistencyReport",
    "DecentralizationStudy",
    "Event",
    "MetricRanking",
    "MultiChainComparison",
    "coincident_events",
    "event_timeline",
    "SlidingAgreement",
    "fixed_vs_sliding_agreement",
    "generate_report",
    "granularity_consistency",
    "pearson_correlation",
    "spearman_correlation",
    "DistributionSlice",
    "FIGURE_IDS",
    "FigureResult",
    "StabilityReport",
    "StudyFindings",
    "producer_shares",
    "stability_report",
]
