"""Extension bench — connectivity advantage feeding back into consensus.

Closes the loop between the network and consensus layers: pool gateways'
propagation latencies skew effective mining shares (race model).  On
Bitcoin's 600 s cadence the skew is negligible; on a 2 s cadence the
best-connected pool gains real share and the effective-share Nakamoto
coefficient can only drop — fast chains pay for speed with network-driven
centralization pressure.
"""

import numpy as np

from repro.chain.pools import bitcoin_pools_2019
from repro.metrics import nakamoto_coefficient
from repro.network import NetworkParams, connectivity_advantage, generate_network


def build_and_measure():
    registry = bitcoin_pools_2019()
    pools = tuple(p.name for p in registry.pools)
    network = generate_network(NetworkParams(n_nodes=1_000, pools=pools, seed=2019))
    nominal = {p.name: p.share_on_day(180) for p in registry.pools}
    results = {"nominal": nominal}
    for label, interval in (("btc-600s", 600.0), ("fast-2s", 2.0)):
        report = connectivity_advantage(network, interval)
        results[label] = report.effective_shares(nominal)
    return results


def test_extension_connectivity_advantage(benchmark):
    results = benchmark.pedantic(build_and_measure, rounds=1, iterations=1)
    nominal = results["nominal"]
    total = sum(nominal.values())
    normalized = {pool: share / total for pool, share in nominal.items()}

    print("\n=== connectivity advantage (mid-2019 shares) ===")
    for label in ("btc-600s", "fast-2s"):
        drift = max(
            abs(results[label][pool] - normalized[pool]) for pool in nominal
        )
        n = nakamoto_coefficient(np.asarray(list(results[label].values())))
        print(f"  {label}: max share drift={drift:.5f} nakamoto={n}")

    nakamoto_nominal = nakamoto_coefficient(np.asarray(list(normalized.values())))
    nakamoto_slow = nakamoto_coefficient(
        np.asarray(list(results["btc-600s"].values()))
    )
    nakamoto_fast = nakamoto_coefficient(np.asarray(list(results["fast-2s"].values())))

    # 600 s blocks: network position is irrelevant (< 0.1% share drift).
    drift_slow = max(
        abs(results["btc-600s"][pool] - normalized[pool]) for pool in nominal
    )
    assert drift_slow < 1e-3
    assert nakamoto_slow == nakamoto_nominal
    # 2 s blocks: measurable redistribution toward well-connected pools.
    drift_fast = max(
        abs(results["fast-2s"][pool] - normalized[pool]) for pool in nominal
    )
    assert drift_fast > 10 * drift_slow
    assert nakamoto_fast <= nakamoto_nominal
