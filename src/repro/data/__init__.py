"""Dataset persistence: partitioned on-disk chain storage and caching.

The paper's datasets were one-off BigQuery extracts; this package provides
the equivalent local workflow — simulate once, store partitioned by month,
reload instantly:

>>> from repro.data import ChainStore, cached_chain
>>> store = ChainStore("datasets/")                    # doctest: +SKIP
>>> chain = cached_chain(store, "btc-2019", simulate_bitcoin_2019)  # doctest: +SKIP
"""

from repro.data.cache import cached_chain
from repro.data.store import ChainStore

__all__ = ["ChainStore", "cached_chain"]
