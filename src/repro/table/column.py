"""Typed column wrapper used by :class:`repro.table.Table`.

A column is a 1-D numpy array plus a *kind* — one of ``"int"``, ``"float"``,
``"bool"`` or ``"str"``.  Strings are stored in object arrays (numpy's
fixed-width unicode arrays would silently truncate miner tags).
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.errors import SchemaError, TableError

#: The column kinds supported by the engine.
KINDS = ("int", "float", "bool", "str")

_KIND_DTYPES = {
    "int": np.dtype(np.int64),
    "float": np.dtype(np.float64),
    "bool": np.dtype(np.bool_),
    "str": np.dtype(object),
}


def infer_kind(values: Any) -> str:
    """Infer the column kind for ``values`` (an array or Python sequence)."""
    array = values if isinstance(values, np.ndarray) else np.asarray(list(values), dtype=object)
    if isinstance(array, np.ndarray) and array.dtype != object:
        return _kind_for_dtype(array.dtype)
    for item in array:
        if item is None:
            continue
        if isinstance(item, str):
            return "str"
        if isinstance(item, bool) or isinstance(item, np.bool_):
            return "bool"
        if isinstance(item, (int, np.integer)):
            return "int"
        if isinstance(item, (float, np.floating)):
            return "float"
        raise SchemaError(f"unsupported value type in column: {type(item).__name__}")
    return "str"


def _kind_for_dtype(dtype: np.dtype) -> str:
    if np.issubdtype(dtype, np.bool_):
        return "bool"
    if np.issubdtype(dtype, np.integer):
        return "int"
    if np.issubdtype(dtype, np.floating):
        return "float"
    if dtype.kind in ("U", "S", "O"):
        return "str"
    raise SchemaError(f"unsupported numpy dtype for a column: {dtype}")


def coerce_values(values: Any, kind: str | None = None) -> tuple[np.ndarray, str]:
    """Coerce ``values`` to a canonical 1-D array of the given (or inferred) kind.

    Returns the array and the resolved kind.
    """
    if isinstance(values, Column):
        values = values.values
    if kind is None:
        if isinstance(values, np.ndarray) and values.dtype != object:
            kind = _kind_for_dtype(values.dtype)
        else:
            kind = infer_kind(values)
    if kind not in KINDS:
        raise SchemaError(f"unknown column kind: {kind!r}")
    if kind == "str":
        if isinstance(values, np.ndarray) and values.dtype == object:
            array = values
        else:
            array = np.empty(len(values), dtype=object)
            for i, item in enumerate(values):
                array[i] = None if item is None else str(item)
    else:
        array = np.asarray(values, dtype=_KIND_DTYPES[kind])
    if array.ndim != 1:
        raise TableError(f"columns must be 1-dimensional, got shape {array.shape}")
    return array, kind


class Column:
    """An immutable named-kind column: a 1-D numpy array plus a kind tag."""

    __slots__ = ("values", "kind")

    def __init__(self, values: Any, kind: str | None = None) -> None:
        array, resolved = coerce_values(values, kind)
        self.values = array
        self.kind = resolved

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __iter__(self) -> Iterable[Any]:
        return iter(self.to_list())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.kind != other.kind or len(self) != len(other):
            return False
        if self.kind == "float":
            return bool(
                np.array_equal(self.values, other.values, equal_nan=True)
            )
        return bool(np.array_equal(self.values, other.values))

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self.to_list()[:5])
        suffix = ", ..." if len(self) > 5 else ""
        return f"Column(kind={self.kind!r}, n={len(self)}, [{preview}{suffix}])"

    def take(self, indices: np.ndarray) -> "Column":
        """Return a new column with rows picked by ``indices``."""
        return Column(self.values[indices], self.kind)

    def to_list(self) -> list[Any]:
        """Return the column as a list of Python scalars."""
        if self.kind == "str":
            return list(self.values)
        return self.values.tolist()

    def cast(self, kind: str) -> "Column":
        """Return a copy of this column converted to ``kind``.

        Numeric conversions use numpy casting; casting to ``str`` applies
        ``str()`` element-wise; casting ``str`` to numeric parses each value.
        """
        if kind == self.kind:
            return self
        if kind not in KINDS:
            raise SchemaError(f"unknown column kind: {kind!r}")
        if kind == "str":
            out = np.empty(len(self), dtype=object)
            for i, item in enumerate(self.values):
                out[i] = str(item)
            return Column(out, "str")
        if self.kind == "str":
            try:
                if kind == "bool":
                    parsed = [_parse_bool(v) for v in self.values]
                else:
                    caster = int if kind == "int" else float
                    parsed = [caster(v) for v in self.values]
            except (TypeError, ValueError) as exc:
                raise SchemaError(f"cannot cast str column to {kind}: {exc}") from exc
            return Column(parsed, kind)
        return Column(self.values.astype(_KIND_DTYPES[kind]), kind)


def _parse_bool(value: Any) -> bool:
    text = str(value).strip().lower()
    if text in ("true", "1", "t", "yes"):
        return True
    if text in ("false", "0", "f", "no"):
        return False
    raise ValueError(f"not a boolean: {value!r}")
