"""The data workflow: simulate once, store partitioned, query like BigQuery.

Demonstrates :mod:`repro.data` (partitioned on-disk chain storage with
month-level partition pruning) and :mod:`repro.bigquery` (the
BigQuery-shaped client the paper's data collection corresponds to).

Run with::

    python examples/store_and_query.py
"""

import tempfile
import time
from pathlib import Path

from repro.bigquery import BigQueryClient
from repro.core import MeasurementEngine
from repro.data import ChainStore
from repro.viz import render_table


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-datasets-"))
    store = ChainStore(workdir)
    client = BigQueryClient(seed=2019, store=store)

    # First query simulates Bitcoin 2019 and persists it to the store.
    started = time.perf_counter()
    job = client.query(
        "SELECT COUNT(*) AS n_blocks, MIN(height) AS first_height, "
        "MAX(height) AS last_height FROM crypto_bitcoin.blocks"
    )
    print(f"cold query ({time.perf_counter() - started:.2f}s):")
    print(render_table(job.result()))
    print(f"\nstored chains: {store.names()}")

    # A fresh client reloads from disk instead of re-simulating.
    started = time.perf_counter()
    fresh = BigQueryClient(seed=2019, store=store)
    job = fresh.query(
        "SELECT primary_producer AS producer, COUNT(*) AS blocks "
        "FROM crypto_bitcoin.blocks GROUP BY 1 ORDER BY 2 DESC LIMIT 5"
    )
    print(f"\nwarm query via store ({time.perf_counter() - started:.2f}s):")
    print(render_table(job.result()))

    # Partition pruning: load only December and measure it.
    december = store.load_months("crypto_bitcoin-2019", [11])
    engine = MeasurementEngine.from_chain(december)
    lo, hi = 0, engine.credits.n_credits
    distribution = engine.credits.distribution(lo, hi)
    from repro.metrics import gini_coefficient

    print(
        f"\nDecember-only partition: {december.n_blocks} blocks, "
        f"gini={gini_coefficient(distribution):.4f}"
    )


if __name__ == "__main__":
    main()
