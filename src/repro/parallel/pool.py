"""Process-pool plumbing for the sharded execution layer.

Three building blocks, shared by the engine, attribution and SQL layers:

* :func:`resolve_workers` — turn a ``workers`` argument (``"auto"``, an
  int, or ``None``) into a concrete worker count.  ``"auto"`` resolves to
  ``os.cpu_count()``, so single-core hosts take the serial fast path and
  stay bit-for-bit on the pre-parallel code; an explicit ``N`` is honored
  even on one core (the pool simply oversubscribes — how the CI
  parallel-smoke job exercises the sharded paths).
* :func:`shard_ranges` — deterministic contiguous ``[lo, hi)`` partitions
  of ``n`` items into at most ``k`` shards.  Merging worker results in
  shard order therefore reproduces the serial iteration order exactly,
  which is what makes the parallel engine/attribution paths byte-identical
  to serial.
* :class:`WorkerPool` — a context-managed ``ProcessPoolExecutor`` whose
  workers (a) reset the process-wide tracer so a forked child never
  inherits a live recording session or its HTTP-server callbacks, and
  (b) can share one large read-only *payload* (a chain or credits object)
  without pickling it per task: with the ``fork`` start method the payload
  is inherited copy-on-write, otherwise it is shipped once per worker
  through the initializer.

Distributed tracing: while the coordinator's tracer is recording,
``map_shards`` propagates its trace context (:meth:`Tracer.context`) with
every shard task.  The worker runs the task under a fresh per-task child
tracer inside a ``worker.shard`` span (resource-profiled too when the
coordinator has profiling on), exports the child's spans and metrics as a
picklable envelope riding back with the result, and the coordinator
adopts them (:meth:`Tracer.adopt`) — renumbered, time-rebased, stamped
with the worker pid, and parented under the coordinator-side
``parallel.shard`` span — so one trace file shows the whole fan-out.  While tracing is off
no context is shipped and tasks run exactly as before (zero envelope
overhead on the hot path).

Pool lifecycle and task counts are visible two ways: obs gauges/counters
(``parallel.pool.workers``, ``parallel.tasks_submitted``, per-shard
``parallel.shard`` spans at the call sites) and :func:`pool_status`, the
JSON-ready snapshot ``repro.serve`` exposes under ``/status``.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

from repro import obs
from repro.errors import ParallelError

#: The value meaning "one worker per available core".
AUTO = "auto"

#: Read-only payload shared with workers (set pre-fork, inherited
#: copy-on-write under the ``fork`` start method; shipped via the
#: initializer otherwise).  Workers read it through :func:`worker_payload`.
_PAYLOAD: Any = None

#: True inside a pool worker process (set by the initializer).
_IN_WORKER = False

# -- lifetime statistics (coordinator side) -----------------------------------

_STATS_LOCK = threading.Lock()
_STATS = {
    "pools_created": 0,
    "tasks_submitted": 0,
    "tasks_completed": 0,
}
_ACTIVE_POOLS = 0
_LAST_POOL: dict | None = None


def resolve_workers(workers: int | str | None) -> int:
    """Resolve a ``workers`` argument to a concrete positive worker count.

    ``None`` and ``"auto"`` mean one worker per core (``os.cpu_count()``),
    so a single-core host resolves to 1 — the serial fast path.  An
    explicit integer is taken literally (2 workers on a 1-core host
    oversubscribe, which is still deterministic, just not faster).

    >>> resolve_workers(3)
    3
    >>> resolve_workers("auto") >= 1
    True
    """
    if workers is None or workers == AUTO:
        return max(1, os.cpu_count() or 1)
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ParallelError(
            f"workers must be a positive int or 'auto', got {workers!r}"
        )
    if workers < 1:
        raise ParallelError(f"workers must be >= 1, got {workers}")
    return workers


def shard_ranges(n: int, shards: int) -> list[tuple[int, int]]:
    """Split ``[0, n)`` into at most ``shards`` contiguous ``(lo, hi)`` ranges.

    The first ``n % shards`` shards carry one extra item, all shards are
    non-empty, and concatenating the ranges in order reproduces ``[0, n)``
    exactly — the deterministic merge order every parallel path relies on.

    >>> shard_ranges(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    >>> shard_ranges(2, 8)
    [(0, 1), (1, 2)]
    """
    if shards < 1:
        raise ParallelError(f"shards must be >= 1, got {shards}")
    shards = min(shards, n)
    if shards <= 0:
        return []
    base, extra = divmod(n, shards)
    ranges: list[tuple[int, int]] = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def in_worker() -> bool:
    """True when called from inside a :class:`WorkerPool` worker process."""
    return _IN_WORKER


def worker_payload() -> Any:
    """The shared read-only payload, from inside a worker task."""
    if not _IN_WORKER:
        raise ParallelError("worker_payload() is only available inside a worker")
    return _PAYLOAD


def _worker_init(payload: Any, has_payload: bool) -> None:
    """Per-worker initializer: scrub inherited state, install the payload.

    Under ``fork`` the child starts as a memory copy of the coordinator:
    a live tracer (spans, metrics, an enabled flag) and the telemetry
    server's callback plumbing would silently come along.  Only the
    forking thread survives into the child, so server *threads* are gone,
    but the recording state is reset here explicitly so worker-side
    instrumentation can never interleave with the coordinator's trace.
    Worker-side tracing happens only deliberately, per task, under a
    propagated context (see :func:`_traced_task`).
    """
    global _IN_WORKER, _PAYLOAD
    _IN_WORKER = True
    if has_payload:
        _PAYLOAD = payload
    tracer = obs.get_tracer()
    tracer.disable()
    tracer.reset()


def _traced_task(
    ctx: dict, fn: Callable[..., Any], args: tuple, index: int
) -> tuple[Any, dict]:
    """Run one shard task under a per-task child tracer (worker side).

    The child tracer records a ``worker.shard`` root span around ``fn``
    (plus whatever spans/metrics ``fn`` itself emits — worker code uses
    the same ``obs`` helpers as the coordinator) and is torn back down
    after every task, so a worker that later runs an untraced task leaks
    nothing.  Returns ``(result, envelope)`` where ``envelope`` is the
    child tracer's :meth:`~repro.obs.tracer.Tracer.export_state`.
    """
    tracer = obs.get_tracer()
    tracer.enable()
    tracer.trace_id = ctx.get("trace_id")
    profiling = bool(ctx.get("profile"))
    if profiling:
        from repro.obs import profile as _profile

        _profile.enable_profiling()
    try:
        with tracer.span(
            "worker.shard", fn=getattr(fn, "__name__", str(fn)), index=index
        ):
            result = fn(*args)
        envelope = tracer.export_state()
    finally:
        if profiling:
            from repro.obs import profile as _profile

            _profile.disable_profiling()
        tracer.disable()
        tracer.reset()
    return result, envelope


class WorkerPool:
    """A deterministic-merge process pool over an optional shared payload.

    Use as a context manager around one sharded operation::

        with WorkerPool(4, payload=credits) as pool:
            parts = pool.map_shards(_shard_fn, [(lo, hi) for lo, hi in ranges])
        merged = np.concatenate(parts)   # shard order == serial order

    ``map_shards`` submits one task per shard and gathers results **in
    shard order** regardless of completion order, so merges are
    reproducible.  A worker exception is re-raised on the coordinator
    wrapped in :class:`~repro.errors.ParallelError`.
    """

    def __init__(self, workers: int, payload: Any = None) -> None:
        global _PAYLOAD, _ACTIVE_POOLS, _LAST_POOL
        self.workers = resolve_workers(workers)
        if self.workers < 2:
            raise ParallelError(
                "WorkerPool requires >= 2 workers; serial callers must use "
                "their non-pooled fast path"
            )
        start_methods = multiprocessing.get_all_start_methods()
        self._fork = "fork" in start_methods
        context = multiprocessing.get_context("fork" if self._fork else None)
        if self._fork:
            # Fork children inherit the payload copy-on-write; no pickling.
            _PAYLOAD = payload
            initargs = (None, False)
        else:  # pragma: no cover - non-fork platforms (win/macOS spawn)
            initargs = (payload, payload is not None)
        self._payload_installed = payload is not None
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=initargs,
        )
        self._created = time.time()
        self._submitted = 0
        self._completed = 0
        with _STATS_LOCK:
            _STATS["pools_created"] += 1
            _ACTIVE_POOLS += 1
            _LAST_POOL = self._snapshot_locked()
        obs.gauge("parallel.pool.workers", float(self.workers))
        obs.counter("parallel.pools_created")

    # -- execution -----------------------------------------------------------

    def map_shards(
        self, fn: Callable[..., Any], shard_args: Sequence[tuple]
    ) -> list[Any]:
        """Run ``fn(*args)`` for each shard; results in shard order.

        ``fn`` must be a module-level (picklable) function.  Each shard's
        wait is recorded as a ``parallel.shard`` span so traces show the
        coordinator-side critical path per shard.  While the coordinator
        tracer is recording, each task additionally runs under a worker
        child tracer whose spans/metrics come back with the result and are
        adopted into the coordinator trace (see :func:`_traced_task`).
        """
        tracer = obs.get_tracer()
        ctx = tracer.context()
        if ctx is None:
            futures = [self._executor.submit(fn, *args) for args in shard_args]
        else:
            futures = [
                self._executor.submit(_traced_task, ctx, fn, tuple(args), i)
                for i, args in enumerate(shard_args)
            ]
        n = len(futures)
        self._submitted += n
        with _STATS_LOCK:
            _STATS["tasks_submitted"] += n
        obs.counter("parallel.tasks_submitted", n)
        results: list[Any] = []
        try:
            for i, future in enumerate(futures):
                with obs.span("parallel.shard", index=i, shards=n) as shard_span:
                    if ctx is None:
                        results.append(future.result())
                    else:
                        result, envelope = future.result()
                        adopted = tracer.adopt(
                            envelope, parent_span=shard_span.span_id
                        )
                        shard_span.set(
                            worker_pid=envelope.get("pid"), worker_spans=adopted
                        )
                        results.append(result)
                self._completed += 1
                with _STATS_LOCK:
                    _STATS["tasks_completed"] += 1
                obs.counter("parallel.tasks_completed")
        except ParallelError:
            raise
        except Exception as exc:
            for future in futures:
                future.cancel()
            raise ParallelError(f"worker shard failed: {exc}") from exc
        finally:
            with _STATS_LOCK:
                globals()["_LAST_POOL"] = self._snapshot_locked()
        return results

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the executor down and release the shared payload."""
        global _PAYLOAD, _ACTIVE_POOLS
        if self._executor is None:
            return
        self._executor.shutdown(wait=True)
        self._executor = None
        if self._fork and self._payload_installed:
            _PAYLOAD = None
        with _STATS_LOCK:
            _ACTIVE_POOLS -= 1
            globals()["_LAST_POOL"] = self._snapshot_locked()
        obs.gauge("parallel.pool.workers", 0.0)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _snapshot_locked(self) -> dict:
        return {
            "workers": self.workers,
            "start_method": "fork" if self._fork else "spawn",
            "tasks_submitted": self._submitted,
            "tasks_completed": self._completed,
            "open": self._executor is not None,
        }


def pool_status() -> dict:
    """JSON-ready snapshot of the worker-pool layer for ``/status``.

    Reports the host parallelism, how many pools are currently open, the
    lifetime pool/task counters, and the most recent pool's shape — enough
    for an operator to see whether sharded execution is active and sized
    as expected.
    """
    with _STATS_LOCK:
        return {
            "cpu_count": os.cpu_count() or 1,
            "auto_workers": resolve_workers(AUTO),
            "active_pools": _ACTIVE_POOLS,
            "lifetime": dict(_STATS),
            "last_pool": dict(_LAST_POOL) if _LAST_POOL else None,
        }
