"""Block propagation over the P2P topology.

Propagation time from a source is modeled as shortest-path latency over
the latency-weighted graph (gossip floods along fastest paths).  The
stale-block (orphan/uncle) rate follows from racing propagation against
the exponential block-interval clock: a competing block found before the
previous one reaches a miner produces a fork, so

.. math::

    P(\\text{stale}) \\approx 1 - e^{-T_{prop}/\\lambda}

with :math:`T_{prop}` the mean miner-weighted propagation delay and
:math:`\\lambda` the mean block interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import SimulationError
from repro.network.topology import P2PNetwork


@dataclass(frozen=True)
class PropagationReport:
    """Propagation-latency distribution from one source node."""

    source: int
    #: Milliseconds to reach 50% / 90% / 99% of nodes.
    p50: float
    p90: float
    p99: float
    #: Mean latency to the pool gateways (the miners that matter for forks).
    mean_to_pools: float
    unreachable: int


def propagation_report(network: P2PNetwork, source: int) -> PropagationReport:
    """Latency percentiles for a block announced at ``source``."""
    if source not in network.graph:
        raise SimulationError(f"unknown source node {source}")
    lengths = nx.single_source_dijkstra_path_length(
        network.graph, source, weight="latency"
    )
    values = np.asarray(
        [lengths[node] for node in network.graph.nodes if node in lengths],
        dtype=np.float64,
    )
    unreachable = network.n_nodes - values.shape[0]
    gateways = [n for n in network.pool_gateways.values() if n in lengths]
    mean_to_pools = (
        float(np.mean([lengths[n] for n in gateways])) if gateways else float("nan")
    )
    return PropagationReport(
        source=source,
        p50=float(np.percentile(values, 50)),
        p90=float(np.percentile(values, 90)),
        p99=float(np.percentile(values, 99)),
        mean_to_pools=mean_to_pools,
        unreachable=unreachable,
    )


def stale_rate(
    network: P2PNetwork, block_interval_seconds: float, source: int | None = None
) -> float:
    """Approximate stale/uncle rate for blocks announced at ``source``.

    Defaults to the best-connected pool gateway as the source (most blocks
    come from pools).  Bitcoin's 600 s interval yields a sub-percent rate;
    Ethereum's ~13 s interval yields several percent — matching the real
    chains' orphan/uncle statistics.
    """
    if block_interval_seconds <= 0:
        raise SimulationError("block_interval_seconds must be positive")
    if source is None:
        if network.pool_gateways:
            source = next(iter(network.pool_gateways.values()))
        else:
            source = max(network.graph.nodes, key=lambda n: network.graph.degree[n])
    report = propagation_report(network, source)
    t_prop = report.mean_to_pools / 1_000.0  # ms -> s
    return float(1.0 - np.exp(-t_prop / block_interval_seconds))
