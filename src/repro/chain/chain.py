"""Columnar chain storage.

A :class:`Chain` holds ``n`` blocks in three numpy arrays plus a CSR-style
producer layout::

    heights      int64[n]          strictly increasing, consecutive
    timestamps   int64[n]          non-decreasing
    offsets      int64[n + 1]      block i's producers are producer_ids[offsets[i]:offsets[i+1]]
    producer_ids int64[credits]    index into producer_names

This scales to Ethereum's 2.2 M blocks (a handful of flat arrays) while
still exposing object-level access (:meth:`block`) and conversion to a
:class:`repro.table.Table` for SQL queries.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.chain.block import Block
from repro.chain.specs import ChainSpec
from repro.errors import ChainError
from repro.table import Table


class Chain:
    """An immutable sequence of blocks with columnar storage."""

    __slots__ = ("spec", "heights", "timestamps", "offsets", "producer_ids", "producer_names", "_tags")

    def __init__(
        self,
        spec: ChainSpec,
        heights: np.ndarray,
        timestamps: np.ndarray,
        offsets: np.ndarray,
        producer_ids: np.ndarray,
        producer_names: Sequence[str],
        tags: Sequence[str | None] | None = None,
        validate: bool = True,
    ) -> None:
        self.spec = spec
        self.heights = np.asarray(heights, dtype=np.int64)
        self.timestamps = np.asarray(timestamps, dtype=np.int64)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.producer_ids = np.asarray(producer_ids, dtype=np.int64)
        self.producer_names = list(producer_names)
        self._tags = list(tags) if tags is not None else None
        if validate:
            self._validate()

    def _validate(self) -> None:
        n = self.heights.shape[0]
        if self.timestamps.shape[0] != n:
            raise ChainError("heights and timestamps must have equal length")
        if self.offsets.shape[0] != n + 1:
            raise ChainError(f"offsets must have length n+1 = {n + 1}")
        if n == 0:
            return
        if self.offsets[0] != 0 or self.offsets[-1] != self.producer_ids.shape[0]:
            raise ChainError("offsets must start at 0 and end at len(producer_ids)")
        if np.any(np.diff(self.offsets) < 1):
            raise ChainError("every block must have at least one producer")
        if np.any(np.diff(self.heights) != 1):
            raise ChainError("heights must be consecutive and increasing")
        if np.any(np.diff(self.timestamps) < 0):
            raise ChainError("timestamps must be non-decreasing")
        if self.producer_ids.size and (
            self.producer_ids.min() < 0
            or self.producer_ids.max() >= len(self.producer_names)
        ):
            raise ChainError("producer_ids reference unknown producer names")
        if self._tags is not None and len(self._tags) != n:
            raise ChainError("tags must have one entry per block")

    # -- construction -------------------------------------------------------

    @classmethod
    def from_blocks(cls, spec: ChainSpec, blocks: Iterable[Block]) -> "Chain":
        """Build a chain from :class:`Block` objects (small datasets)."""
        blocks = list(blocks)
        heights = np.asarray([b.height for b in blocks], dtype=np.int64)
        timestamps = np.asarray([b.timestamp for b in blocks], dtype=np.int64)
        name_to_id: dict[str, int] = {}
        producer_ids: list[int] = []
        offsets = np.zeros(len(blocks) + 1, dtype=np.int64)
        for i, block in enumerate(blocks):
            for producer in block.producers:
                pid = name_to_id.get(producer)
                if pid is None:
                    pid = len(name_to_id)
                    name_to_id[producer] = pid
                producer_ids.append(pid)
            offsets[i + 1] = len(producer_ids)
        tags = [b.tag for b in blocks]
        names = [""] * len(name_to_id)
        for name, pid in name_to_id.items():
            names[pid] = name
        return cls(
            spec,
            heights,
            timestamps,
            offsets,
            np.asarray(producer_ids, dtype=np.int64),
            names,
            tags=tags if any(t is not None for t in tags) else None,
        )

    @classmethod
    def single_producer(
        cls,
        spec: ChainSpec,
        heights: np.ndarray,
        timestamps: np.ndarray,
        producer_ids: np.ndarray,
        producer_names: Sequence[str],
        validate: bool = True,
    ) -> "Chain":
        """Build a chain where every block has exactly one producer.

        This is the fast path the Ethereum simulator uses: ``producer_ids``
        has one entry per block and the CSR offsets are implicit.
        """
        n = np.asarray(heights).shape[0]
        offsets = np.arange(n + 1, dtype=np.int64)
        return cls(
            spec, heights, timestamps, offsets, producer_ids, producer_names,
            validate=validate,
        )

    # -- accessors ----------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        """Number of blocks."""
        return int(self.heights.shape[0])

    @property
    def n_credits(self) -> int:
        """Total number of (block, producer) credit pairs."""
        return int(self.producer_ids.shape[0])

    @property
    def n_producers(self) -> int:
        """Number of distinct producer names."""
        return len(self.producer_names)

    @property
    def start_height(self) -> int:
        """Height of the first block."""
        if self.n_blocks == 0:
            raise ChainError("empty chain has no start height")
        return int(self.heights[0])

    @property
    def end_height(self) -> int:
        """Height of the last block."""
        if self.n_blocks == 0:
            raise ChainError("empty chain has no end height")
        return int(self.heights[-1])

    def __len__(self) -> int:
        return self.n_blocks

    def __repr__(self) -> str:
        if self.n_blocks == 0:
            return f"Chain(spec={self.spec.name}, empty)"
        return (
            f"Chain(spec={self.spec.name}, blocks={self.n_blocks}, "
            f"heights=[{self.start_height}..{self.end_height}], "
            f"producers={self.n_producers})"
        )

    def block(self, index: int) -> Block:
        """Materialize block ``index`` (0-based position) as a :class:`Block`."""
        if not -self.n_blocks <= index < self.n_blocks:
            raise ChainError(f"block index {index} out of range")
        if index < 0:
            index += self.n_blocks
        start, stop = int(self.offsets[index]), int(self.offsets[index + 1])
        producers = tuple(
            self.producer_names[pid] for pid in self.producer_ids[start:stop]
        )
        tag = self._tags[index] if self._tags is not None else None
        return Block(
            height=int(self.heights[index]),
            timestamp=int(self.timestamps[index]),
            producers=producers,
            tag=tag,
        )

    def blocks(self) -> Iterator[Block]:
        """Iterate over all blocks as :class:`Block` objects (slow path)."""
        for i in range(self.n_blocks):
            yield self.block(i)

    def producer_counts(self) -> np.ndarray:
        """Per-block producer counts (1 for normal blocks)."""
        return np.diff(self.offsets)

    def anomalous_blocks(self, threshold: int = 10) -> list[Block]:
        """Blocks crediting at least ``threshold`` producers (paper §II-C1d)."""
        indices = np.flatnonzero(self.producer_counts() >= threshold)
        return [self.block(int(i)) for i in indices]

    # -- slicing --------------------------------------------------------------

    def slice_blocks(self, start: int, stop: int) -> "Chain":
        """Return the sub-chain of block positions ``[start, stop)``."""
        start = max(0, start)
        stop = min(self.n_blocks, stop)
        if stop < start:
            raise ChainError(f"invalid block slice [{start}, {stop})")
        lo, hi = int(self.offsets[start]), int(self.offsets[stop])
        offsets = self.offsets[start : stop + 1] - self.offsets[start]
        tags = self._tags[start:stop] if self._tags is not None else None
        return Chain(
            self.spec,
            self.heights[start:stop],
            self.timestamps[start:stop],
            offsets,
            self.producer_ids[lo:hi],
            self.producer_names,
            tags=tags,
            validate=False,
        )

    def slice_by_height(self, first_height: int, last_height: int) -> "Chain":
        """Return the sub-chain with heights in ``[first_height, last_height]``."""
        start = int(np.searchsorted(self.heights, first_height, side="left"))
        stop = int(np.searchsorted(self.heights, last_height, side="right"))
        return self.slice_blocks(start, stop)

    def slice_by_time(self, start_ts: int, end_ts: int) -> "Chain":
        """Return the sub-chain with timestamps in ``[start_ts, end_ts)``."""
        start = int(np.searchsorted(self.timestamps, start_ts, side="left"))
        stop = int(np.searchsorted(self.timestamps, end_ts, side="left"))
        return self.slice_blocks(start, stop)

    # -- export ---------------------------------------------------------------

    def to_table(self) -> Table:
        """One row per (block, producer) credit, ready for SQL queries.

        Columns: ``height`` (int), ``timestamp`` (int), ``producer`` (str),
        ``n_producers`` (int, the block's total producer count).
        """
        counts = self.producer_counts()
        heights = np.repeat(self.heights, counts)
        timestamps = np.repeat(self.timestamps, counts)
        n_producers = np.repeat(counts, counts)
        names = np.empty(self.n_credits, dtype=object)
        lookup = self.producer_names
        for i, pid in enumerate(self.producer_ids):
            names[i] = lookup[pid]
        return Table(
            {
                "height": heights,
                "timestamp": timestamps,
                "producer": names,
                "n_producers": n_producers,
            }
        )

    def block_table(self) -> Table:
        """One row per block: ``height``, ``timestamp``, ``primary_producer``."""
        first = self.offsets[:-1]
        names = np.empty(self.n_blocks, dtype=object)
        lookup = self.producer_names
        for i, pid in enumerate(self.producer_ids[first]):
            names[i] = lookup[pid]
        return Table(
            {
                "height": self.heights,
                "timestamp": self.timestamps,
                "primary_producer": names,
                "n_producers": self.producer_counts(),
            }
        )
