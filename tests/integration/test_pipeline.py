"""End-to-end pipeline tests across subsystems.

These exercise the full path the paper's methodology takes — simulate →
attribute → window → metric → series → export — plus the SQL surface over
the same data, on a small custom chain so they stay fast.
"""

import json

import numpy as np
import pytest

from repro.chain.attribution import attribute
from repro.chain.pools import PoolInfo, PoolRegistry
from repro.chain.specs import ChainSpec
from repro.core.engine import MeasurementEngine
from repro.core.summary import summarize
from repro.simulation.miners import TailConfig
from repro.simulation.params import SimulationParams
from repro.simulation.powsim import ChainSimulator
from repro.sql import QueryEngine
from repro.table.io import read_csv
from repro.viz.export import series_to_csv, series_to_json


@pytest.fixture(scope="module")
def small_chain():
    spec = ChainSpec(
        name="pipechain",
        start_height=500,
        block_count=7_300,  # 20 blocks/day
        target_interval=4_320.0,
        blocks_per_day=20,
        window_day=20,
        window_week=140,
        window_month=600,
    )
    registry = PoolRegistry(
        [
            PoolInfo("P1", "p1", 0.35, 0.30),
            PoolInfo("P2", "p2", 0.25, 0.30),
            PoolInfo("P3", "p3", 0.20, 0.20),
        ]
    )
    params = SimulationParams(
        spec=spec,
        registry=registry,
        tail=TailConfig(3, 0.05, 1.0, 1.0, early_period_end=0),
        seed=99,
    )
    return ChainSimulator(params).run()


class TestFullPipeline:
    def test_simulate_measure_summarize(self, small_chain):
        engine = MeasurementEngine.from_chain(small_chain)
        series = engine.measure_calendar("gini", "week")
        summary = summarize(series)
        assert summary.n_windows == 52
        assert 0.0 < summary.mean < 1.0

    def test_sliding_over_custom_spec_sizes(self, small_chain):
        engine = MeasurementEngine.from_chain(small_chain)
        size = small_chain.spec.window_week
        series = engine.measure_sliding("nakamoto", size)
        expected = (small_chain.n_blocks - size) // (size // 2) + 1
        assert len(series) == expected

    def test_pool_policy_collapses_entities(self, small_chain):
        registry = PoolRegistry(
            [
                PoolInfo("P1", "p1", 0.35, 0.30),
                PoolInfo("P2", "p2", 0.25, 0.30),
                PoolInfo("P3", "p3", 0.20, 0.20),
            ]
        )
        per_address = attribute(small_chain, "per-address")
        pooled = attribute(small_chain, "pool", registry=registry)
        assert pooled.n_entities <= per_address.n_entities
        assert pooled.total_weight == small_chain.n_blocks

    def test_export_roundtrip(self, small_chain, tmp_path):
        engine = MeasurementEngine.from_chain(small_chain)
        series = engine.measure_calendar("entropy", "month")
        csv_path = tmp_path / "series.csv"
        json_path = tmp_path / "series.json"
        series_to_csv(series, csv_path)
        series_to_json(series, json_path)
        table = read_csv(csv_path)
        assert table.num_rows == 12
        payload = json.loads(json_path.read_text())
        assert payload["summary"]["n_windows"] == 12
        assert payload["points"][0]["label"] == "2019-01"

    def test_sql_over_simulated_chain(self, small_chain):
        engine = QueryEngine({"credits": small_chain.to_table()})
        out = engine.execute(
            "SELECT producer, COUNT(*) AS n FROM credits "
            "GROUP BY producer ORDER BY n DESC LIMIT 3"
        )
        assert out.num_rows == 3
        # The top producers must be the three pools.
        assert set(out["producer"].tolist()) == {"p1", "p2", "p3"}
        total = engine.execute("SELECT COUNT(*) AS n FROM credits").row(0)["n"]
        assert total == small_chain.n_credits

    def test_sql_counts_match_engine_distribution(self, small_chain):
        """The SQL path and the measurement path agree on the same data."""
        credits = attribute(small_chain, "per-address")
        ids, totals = credits.distribution_with_entities(0, credits.n_credits)
        by_name = {
            credits.entity_names[int(i)]: int(t) for i, t in zip(ids, totals)
        }
        engine = QueryEngine({"credits": small_chain.to_table()})
        out = engine.execute(
            "SELECT producer, COUNT(*) AS n FROM credits GROUP BY producer"
        )
        sql_counts = dict(zip(out["producer"].tolist(), out["n"].tolist()))
        assert sql_counts == by_name

    def test_metrics_consistent_across_apis(self, small_chain):
        """Metric on engine distribution == metric via measure()."""
        from repro.metrics import gini_coefficient
        from repro.windows.base import BlockWindow

        engine = MeasurementEngine.from_chain(small_chain)
        window = BlockWindow(index=0, label="w", start_block=0, stop_block=600)
        series = engine.measure("gini", [window])
        direct = gini_coefficient(engine.distribution_for(window))
        assert series.values[0] == pytest.approx(direct)
