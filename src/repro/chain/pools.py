"""Mining-pool registry and the 2019 pool snapshots.

``PoolInfo`` records a pool's canonical name, its payout address and its
approximate share of mining power at the start and end of 2019 (the
simulator interpolates between the two).  Shares follow the published 2019
pool statistics (btc.com / etherscan pool charts) and were calibrated (see
EXPERIMENTS.md) so the simulated distributions land in the paper's measured
ranges — e.g. Bitcoin's top-4 pools crossing the 51% line mid-year (Nakamoto
coefficient stable at 4) and Ethereum's top-2 hovering just below it
(Nakamoto oscillating 2–3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import ValidationError


@dataclass(frozen=True)
class PoolInfo:
    """A mining pool with its payout address and 2019 share trajectory."""

    name: str
    address: str
    share_early: float
    share_late: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.share_early <= 1.0 or not 0.0 <= self.share_late <= 1.0:
            raise ValidationError(f"pool {self.name}: shares must be in [0, 1]")

    def share_on_day(self, day: int, n_days: int = 365) -> float:
        """Linearly interpolated share on 0-based ``day`` of the year."""
        fraction = day / max(n_days - 1, 1)
        return self.share_early + (self.share_late - self.share_early) * fraction


class PoolRegistry:
    """Maps payout addresses to pool names (unknown addresses pass through)."""

    def __init__(self, pools: Iterable[PoolInfo] = ()) -> None:
        self._by_address: dict[str, str] = {}
        self._pools: list[PoolInfo] = []
        for pool in pools:
            self.register(pool)

    def register(self, pool: PoolInfo) -> None:
        """Add a pool; re-registering an address is an error."""
        if pool.address in self._by_address:
            raise ValidationError(f"address {pool.address!r} already registered")
        self._by_address[pool.address] = pool.name
        self._pools.append(pool)

    @property
    def pools(self) -> tuple[PoolInfo, ...]:
        """All registered pools, in registration order."""
        return tuple(self._pools)

    def pool_of(self, address: str) -> str:
        """Canonical entity for ``address``: its pool name, or itself."""
        return self._by_address.get(address, address)

    def is_pool_address(self, address: str) -> bool:
        """True if ``address`` is a registered pool payout address."""
        return address in self._by_address

    def as_mapping(self) -> Mapping[str, str]:
        """Read-only view of the address → pool-name mapping."""
        return dict(self._by_address)

    def __len__(self) -> int:
        return len(self._pools)

    def __contains__(self, address: object) -> bool:
        return address in self._by_address


def bitcoin_pools_2019() -> PoolRegistry:
    """The 2019 Bitcoin mining pools with calibrated share trajectories.

    Early-2019 mining power was flatter; by late 2019 F2Pool and Poolin had
    grown while BTC.TOP, SlushPool and BitFury shrank.  The top-4 cumulative
    share crosses 51% around mid-year, which pins the daily Nakamoto
    coefficient at 4 through the paper's stable window (days 100–260).
    """
    pools = [
        PoolInfo("BTC.com", "btc1qbtccom0000000000000000000000000", 0.160, 0.126),
        PoolInfo("F2Pool", "btc1qf2pool00000000000000000000000000", 0.108, 0.160),
        PoolInfo("Poolin", "btc1qpoolin00000000000000000000000000", 0.085, 0.155),
        PoolInfo("AntPool", "btc1qantpool0000000000000000000000000", 0.130, 0.112),
        PoolInfo("SlushPool", "btc1qslush000000000000000000000000000", 0.092, 0.072),
        PoolInfo("ViaBTC", "btc1qviabtc00000000000000000000000000", 0.073, 0.066),
        PoolInfo("BTC.TOP", "btc1qbtctop00000000000000000000000000", 0.080, 0.044),
        PoolInfo("Huobi.pool", "btc1qhuobi000000000000000000000000000", 0.056, 0.048),
        PoolInfo("58COIN", "btc1q58coin00000000000000000000000000", 0.028, 0.040),
        PoolInfo("BitFury", "btc1qbitfury0000000000000000000000000", 0.032, 0.020),
        PoolInfo("Bitcoin.com", "btc1qbitcoincom000000000000000000000", 0.015, 0.008),
        PoolInfo("DPOOL", "btc1qdpool000000000000000000000000000", 0.020, 0.009),
        PoolInfo("BytePool", "btc1qbytepool000000000000000000000000", 0.004, 0.015),
        PoolInfo("SpiderPool", "btc1qspider00000000000000000000000000", 0.011, 0.016),
        PoolInfo("OKExPool", "btc1qokex0000000000000000000000000000", 0.009, 0.030),
        PoolInfo("NovaBlock", "btc1qnovablock00000000000000000000000", 0.002, 0.011),
        PoolInfo("SigmaPool", "btc1qsigmapool00000000000000000000000", 0.011, 0.018),
        PoolInfo("Bixin", "btc1qbixin000000000000000000000000000", 0.018, 0.013),
        PoolInfo("BTCC", "btc1qbtcc0000000000000000000000000000", 0.013, 0.005),
        PoolInfo("MatPool", "btc1qmatpool0000000000000000000000000", 0.005, 0.012),
    ]
    return PoolRegistry(pools)


def ethereum_pools_2019() -> PoolRegistry:
    """The 2019 Ethereum mining pools with calibrated share trajectories.

    Ethermine and SparkPool jointly hovered just below the 51% threshold,
    which is what makes the paper's Ethereum Nakamoto coefficient oscillate
    between 2 and 3.
    """
    pools = [
        PoolInfo("Ethermine", "0xethermine00000000000000000000000000", 0.270, 0.258),
        PoolInfo("SparkPool", "0xsparkpool00000000000000000000000000", 0.215, 0.252),
        PoolInfo("F2Pool_eth", "0xf2pooleth00000000000000000000000000", 0.120, 0.108),
        PoolInfo("Nanopool", "0xnanopool000000000000000000000000000", 0.100, 0.080),
        PoolInfo("MiningPoolHub", "0xmininghub0000000000000000000000000", 0.065, 0.048),
        PoolInfo("zhizhu.top", "0xzhizhutop00000000000000000000000000", 0.018, 0.056),
        PoolInfo("Hiveon", "0xhiveon00000000000000000000000000000", 0.010, 0.044),
        PoolInfo("DwarfPool", "0xdwarfpool00000000000000000000000000", 0.030, 0.018),
        PoolInfo("UUPool", "0xuupool00000000000000000000000000000", 0.032, 0.026),
        PoolInfo("Coinotron", "0xcoinotron00000000000000000000000000", 0.016, 0.011),
        PoolInfo("MinerallPool", "0xminerall000000000000000000000000000", 0.013, 0.016),
        PoolInfo("PandaMiner", "0xpandaminer0000000000000000000000000", 0.011, 0.009),
    ]
    return PoolRegistry(pools)
