"""Command-line interface.

Subcommands::

    repro-decentralization simulate   --chain bitcoin --out blocks.csv
    repro-decentralization measure    --chain bitcoin --metric gini --windows fixed-day
    repro-decentralization figure     --id 9 --chart --export-dir out/
    repro-decentralization study
    repro-decentralization query      --chain bitcoin --sql "SELECT ..."
    repro-decentralization trace      trace.json
    repro-decentralization monitor    --chain bitcoin --serve 9464 --slo slo.toml
    repro-decentralization top        --port 9464
    repro-decentralization alerts     alerts.jsonl --follow
    repro-decentralization chaos      --seed 7 --blocks 4096
    repro-decentralization bench-diff OLD.json NEW.json --fail-over 1.25

All commands simulate the calibrated 2019 datasets on demand (seeded, so
repeated runs are identical).  The global ``--trace FILE`` flag records a
span trace of whatever the command did (``.jsonl`` for the line format,
anything else for Chrome ``chrome://tracing`` JSON) — including spans
recorded inside pool workers, merged back with their worker pids;
``repro trace FILE`` summarizes or validates such a file afterwards
(the summary tolerates truncated traces from interrupted runs).  The
global ``--profile`` flag samples cpu/RSS per span and prints a
per-stage resource rollup after the command (pair with ``--trace`` to
keep the annotated spans).  ``repro top`` is a live dashboard over a
serving monitor's ``/status``.  ``--log-json`` and ``--log-level``
configure structured logging (span-correlated records).
``--workers auto|N`` sizes the sharded execution pool used by the
measurement engine and SQL aggregation (``auto`` = one worker per CPU;
``1`` forces the serial path; see ``docs/PARALLELISM.md``).

Exit codes are part of the contract: ``2`` for argument/validation
errors (including a malformed ``--inject-faults`` spec or ``--slo``
file), ``1`` for runtime failures (I/O, unknown figures, exhausted retries or an open
circuit breaker, a chaos-run divergence, a benchmark regression past
``--fail-over``), ``0`` otherwise.
"""

from __future__ import annotations

import argparse
import atexit
import signal
import sys
import threading
from typing import Callable, Iterator, Sequence

from repro import obs
from repro.analysis.study import DecentralizationStudy
from repro.core.summary import summarize
from repro.errors import FaultSpecError, ReproError
from repro.metrics import available_metrics
from repro.obs.export import validate_trace_file, write_trace
from repro.obs.logging import configure_logging
from repro.obs.regression import (
    compare_benchmarks,
    format_comparison,
    load_benchmark_file,
)
from repro.obs.report import (
    format_profile_rollup,
    profile_rollup,
    summarize_trace_file_lenient,
)
from repro.sql import PlannerOptions, QueryEngine, format_plan
from repro.sql.cost import TOGGLE_NAMES
from repro.table.io import write_csv
from repro.viz.ascii import ascii_chart
from repro.viz.export import export_figure, series_to_csv
from repro.viz.tables import format_series_rows

_CHAIN_KEYS = {"bitcoin": "btc", "btc": "btc", "ethereum": "eth", "eth": "eth"}


def _workers_arg(text: str) -> str | int:
    """argparse type for ``--workers``: ``auto`` or a positive integer.

    A bad value raises :class:`argparse.ArgumentTypeError`, which argparse
    turns into a usage error — exit code 2, the argument-error contract.
    """
    if text == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'auto' or a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"worker count must be >= 1, got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro-decentralization",
        description="Measure decentralization in simulated 2019 Bitcoin/Ethereum.",
    )
    parser.add_argument("--seed", type=int, default=2019, help="simulation seed")
    parser.add_argument(
        "--workers",
        type=_workers_arg,
        default="auto",
        metavar="auto|N",
        help="worker processes for sharded measurement/attribution/SQL "
        "('auto' = one per CPU, 1 = serial; default auto)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record a span trace of the command "
        "(.jsonl = line format, otherwise Chrome trace JSON)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="sample cpu/RSS per span and print a per-stage resource "
        "rollup after the command (implies tracing; add --profile-malloc "
        "for allocation deltas)",
    )
    parser.add_argument(
        "--profile-malloc",
        action="store_true",
        help="with --profile: also record per-span allocation deltas via "
        "tracemalloc (slower)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit one JSON object per log line (span-correlated)",
    )
    parser.add_argument(
        "--log-level",
        default="INFO",
        choices=["DEBUG", "INFO", "WARNING", "ERROR"],
        help="minimum level for repro.* loggers (default INFO)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="simulate a chain and export blocks")
    simulate.add_argument("--chain", choices=sorted(_CHAIN_KEYS), required=True)
    simulate.add_argument("--out", required=True, help="output CSV path")

    measure = sub.add_parser("measure", help="compute one metric series")
    measure.add_argument("--chain", choices=sorted(_CHAIN_KEYS), required=True)
    measure.add_argument("--metric", choices=available_metrics(), required=True)
    measure.add_argument(
        "--windows",
        required=True,
        help="window family: fixed-day|fixed-week|fixed-month|sliding-<N>[/<M>]",
    )
    measure.add_argument("--out", help="optional CSV output path")
    measure.add_argument("--chart", action="store_true", help="print an ASCII chart")
    measure.add_argument(
        "--inject-faults", metavar="SPEC", default=None,
        help="ingest the chain through the fault injector "
        "(kind[:rate=F,max=N];... — see 'repro chaos') and measure the "
        "repaired result; the data-quality report is stamped on the series",
    )
    measure.add_argument(
        "--repair-policy", choices=["refetch", "interpolate", "drop"],
        default="refetch",
        help="how --inject-faults ingestion repairs bad blocks "
        "(default refetch, the byte-identical policy)",
    )

    figure = sub.add_parser("figure", help="reproduce figures of the paper")
    figure.add_argument(
        "--id", required=True, help="figure number (1-14), 'fig9', or 'all'"
    )
    figure.add_argument("--chart", action="store_true", help="print ASCII charts")
    figure.add_argument("--export-dir", help="write the figure's CSV/JSON files here")

    sub.add_parser("study", help="run the full study and print the findings")

    report = sub.add_parser("report", help="write the full study as markdown")
    report.add_argument("--out", required=True, help="markdown output path")

    layers = sub.add_parser(
        "layers", help="consensus/network/wealth decentralization summary"
    )
    layers.add_argument("--chain", choices=sorted(_CHAIN_KEYS), required=True)
    layers.add_argument(
        "--nodes", type=int, default=800, help="P2P network size for the network layer"
    )

    query = sub.add_parser("query", help="run SQL over a simulated chain")
    query.add_argument("--chain", choices=sorted(_CHAIN_KEYS), required=True)
    query.add_argument(
        "--sql",
        required=True,
        help="SELECT over 'blocks' (one row per block) or "
        "'credits' (one row per block-producer credit)",
    )
    query.add_argument("--limit", type=int, default=20, help="max rows to print")
    query.add_argument(
        "--explain-analyze",
        action="store_true",
        help="print the executed plan tree with per-operator timings, row "
        "counts and optimizer estimates",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the plan (logical summary + physical plan with "
        "estimated rows) without executing",
    )
    query.add_argument(
        "--analyze",
        action="store_true",
        help="run ANALYZE over the catalog first so the optimizer plans "
        "with real statistics",
    )
    query.add_argument(
        "--index",
        action="append",
        default=[],
        metavar="TABLE.COLUMN[:KIND]",
        help="build a secondary index before planning (KIND: sorted, hash "
        "or auto; repeatable)",
    )
    query.add_argument(
        "--disable",
        action="append",
        default=[],
        choices=sorted(TOGGLE_NAMES) + ["optimizer"],
        help="turn off one optimizer feature, or 'optimizer' for the whole "
        "cost-based planner (repeatable)",
    )

    analyze = sub.add_parser(
        "analyze", help="collect optimizer statistics over a simulated chain"
    )
    analyze.add_argument("--chain", choices=sorted(_CHAIN_KEYS), required=True)
    analyze.add_argument(
        "--table",
        choices=["blocks", "credits"],
        default=None,
        help="analyze only this table (default: all)",
    )
    analyze.add_argument(
        "--index",
        action="append",
        default=[],
        metavar="TABLE.COLUMN[:KIND]",
        help="also build a secondary index and report it (repeatable)",
    )

    trace = sub.add_parser("trace", help="summarize or validate a recorded trace file")
    trace.add_argument("file", help="trace file written with --trace")
    trace.add_argument(
        "--validate",
        action="store_true",
        help="check the file against the exporter schema instead of summarizing",
    )

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over a serving monitor's /status",
    )
    top.add_argument(
        "--url",
        help="status endpoint (default http://127.0.0.1:<port>/status)",
    )
    top.add_argument(
        "--port", type=int, help="shorthand for --url on 127.0.0.1"
    )
    top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between polls"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after N frames (default: run until Ctrl-C)",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of redrawing (for logs/CI)",
    )

    monitor = sub.add_parser(
        "monitor",
        help="replay a chain through the streaming monitor, "
        "optionally serving live telemetry",
    )
    monitor.add_argument("--chain", choices=sorted(_CHAIN_KEYS), required=True)
    monitor.add_argument(
        "--window", type=int, default=144, help="sliding window size N in blocks"
    )
    monitor.add_argument(
        "--stride", type=int, default=None, help="evaluation stride M (default N/2)"
    )
    monitor.add_argument(
        "--blocks", type=int, default=None,
        help="replay only the first N blocks (default: the whole year)",
    )
    monitor.add_argument(
        "--serve", type=int, metavar="PORT", default=None,
        help="serve /metrics, /healthz, /readyz and /status on PORT "
        "(0 picks an ephemeral port) while ingesting",
    )
    monitor.add_argument(
        "--port-file", metavar="FILE", default=None,
        help="write the bound telemetry port to FILE (for scripted scrapers)",
    )
    monitor.add_argument(
        "--throttle", type=float, default=0.0,
        help="sleep this many seconds between blocks (simulates a live feed)",
    )
    monitor.add_argument(
        "--linger", type=float, default=0.0,
        help="keep serving this many seconds after the replay ends "
        "(-1 = until SIGINT/SIGTERM)",
    )
    monitor.add_argument(
        "--alert-below", action="append", default=[], metavar="METRIC=VALUE",
        help="alert when METRIC drops below VALUE (repeatable; also "
        "accepts the progress metrics lag_blocks/blocks_ingested, which "
        "alert through the stateful engine only)",
    )
    monitor.add_argument(
        "--alert-above", action="append", default=[], metavar="METRIC=VALUE",
        help="alert when METRIC rises above VALUE (repeatable)",
    )
    monitor.add_argument(
        "--slo", metavar="FILE", default=None,
        help="evaluate declarative SLOs from a TOML/JSON file with "
        "multi-window burn rates (see docs/OBSERVABILITY.md)",
    )
    monitor.add_argument(
        "--alert-log", metavar="FILE", default=None,
        help="append every alert lifecycle event to FILE as JSONL "
        "(tail it with 'repro alerts FILE')",
    )
    monitor.add_argument(
        "--alert-webhook", metavar="URL", default=None,
        help="POST every alert lifecycle event to URL as JSON "
        "(retried; delivery failures are logged, never fatal)",
    )
    monitor.add_argument(
        "--anomaly", action="append", default=[], metavar="METRIC",
        help="flag EWMA z-score anomalies in METRIC through the alert "
        "engine (repeatable)",
    )
    monitor.add_argument(
        "--inject-faults", metavar="SPEC", default=None,
        help="mangle the block feed through the fault injector "
        "(dropped/duplicated/emptied blocks); combine with --max-restarts "
        "to survive the crashes empty blocks cause",
    )
    monitor.add_argument(
        "--max-restarts", type=int, default=None, metavar="N",
        help="supervise the ingest loop: restart it up to N times on a "
        "crash, serving 503 on /readyz while degraded (default: no "
        "supervision, a crash fails the command)",
    )
    monitor.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="admission control: at most N telemetry requests execute "
        "concurrently; excess arrivals queue briefly, then get 503 + "
        "Retry-After (default: unbounded)",
    )
    monitor.add_argument(
        "--admission-queue", type=int, default=16, metavar="N",
        help="bounded wait queue in front of admission control "
        "(default 16; only with --max-inflight)",
    )
    monitor.add_argument(
        "--rate-limit", metavar="RPS[:BURST]", default=None,
        help="per-client token-bucket rate limit (keyed by X-Client-Id "
        "or peer address); over-limit clients get 429 with RateLimit-* "
        "headers (BURST defaults to 2*RPS)",
    )
    monitor.add_argument(
        "--cache-ttl", type=float, default=1.0, metavar="SECONDS",
        help="how long cached /status and series snapshots count as "
        "fresh; stale copies serve load shedding (default 1.0)",
    )
    monitor.add_argument(
        "--ingest-queue", type=int, default=None, metavar="N",
        help="decouple the feed from the monitor with a bounded queue "
        "of N blocks (default: ingest inline, no queue)",
    )
    monitor.add_argument(
        "--ingest-policy", choices=["block", "drop-oldest", "shed"],
        default="block",
        help="what a full ingest queue does: block the feed "
        "(backpressure), drop the oldest buffered block, or shed the "
        "incoming one (default block)",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a serving monitor with closed- or open-loop load and "
        "report latency percentiles and per-status counts",
    )
    loadgen.add_argument(
        "--url", help="base URL of the server (e.g. http://127.0.0.1:9464)"
    )
    loadgen.add_argument(
        "--port", type=int, help="shorthand for --url on 127.0.0.1"
    )
    loadgen.add_argument(
        "--path", default="/status",
        help="path to request (default /status)",
    )
    loadgen.add_argument(
        "--duration", type=float, default=5.0,
        help="how long to drive load, in seconds (default 5)",
    )
    loadgen.add_argument(
        "--clients", type=int, default=4,
        help="concurrent workers, each with its own X-Client-Id (default 4)",
    )
    loadgen.add_argument(
        "--rps", type=float, default=None,
        help="total target request rate (closed loop: paces clients; "
        "open loop: the fixed arrival schedule; default: unpaced)",
    )
    loadgen.add_argument(
        "--mode", choices=["closed", "open"], default="closed",
        help="closed = fire after previous completes, open = fire on a "
        "fixed schedule regardless (requires --rps; default closed)",
    )
    loadgen.add_argument(
        "--timeout", type=float, default=2.0,
        help="per-request timeout in seconds (default 2)",
    )
    loadgen.add_argument(
        "--fail-on-unhandled", action="store_true",
        help="exit 1 when any connection error or unhandled 5xx "
        "(a 5xx without Retry-After) was observed",
    )

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection drill: ingest a chain through every "
        "fault class and verify byte-identical recovery",
    )
    chaos.add_argument(
        "--seed", type=int, default=7,
        help="fault-schedule and simulation seed (default 7)",
    )
    chaos.add_argument("--chain", choices=sorted(_CHAIN_KEYS), default="bitcoin")
    chaos.add_argument(
        "--blocks", type=int, default=4096,
        help="length of the chain prefix to drill on (default 4096)",
    )
    chaos.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="fault spec kind[:rate=F,max=N];... "
        "(default: every fault class at moderate rates)",
    )
    chaos.add_argument(
        "--repair-policy", choices=["refetch", "interpolate", "drop"],
        default="refetch",
        help="integrity repair policy; only refetch guarantees the "
        "byte-identical verdict (default refetch)",
    )
    chaos.add_argument(
        "--page-size", type=int, default=256,
        help="ingest page size in blocks (default 256)",
    )

    alerts = sub.add_parser(
        "alerts",
        help="print or follow an alert JSONL log written with "
        "'repro monitor --alert-log'",
    )
    alerts.add_argument("file", help="alert JSONL file to read")
    alerts.add_argument(
        "--follow", "-f", action="store_true",
        help="keep reading as the file grows (Ctrl-C to stop)",
    )
    alerts.add_argument(
        "--lines", type=int, default=None, metavar="N",
        help="print only the last N events before following",
    )
    alerts.add_argument(
        "--interval", type=float, default=0.5,
        help="poll interval while following (default 0.5s)",
    )

    bench_diff = sub.add_parser(
        "bench-diff",
        help="compare two BENCH_pipeline.json files and gate on regressions",
    )
    bench_diff.add_argument("old", help="baseline pytest-benchmark JSON")
    bench_diff.add_argument("new", help="candidate pytest-benchmark JSON")
    bench_diff.add_argument(
        "--fail-over", type=float, default=None, metavar="RATIO",
        help="exit 1 when any median grew past RATIO x baseline (e.g. 1.25); "
        "without it the diff is informational and always exits 0",
    )
    bench_diff.add_argument(
        "--min-seconds", type=float, default=0.001,
        help="ignore stages whose baseline median is below this (noise floor)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(json_lines=args.log_json, level=args.log_level)
    exit_flush: Callable[[], None] | None = None
    if args.trace or args.profile:
        obs.enable_tracing()
    if args.profile:
        from repro.obs import profile as profile_mod

        profile_mod.enable_profiling(trace_malloc=args.profile_malloc)
    if args.trace:
        # A long-running `monitor --serve` may be killed mid-run; the
        # atexit hook flushes whatever was recorded so --trace output is
        # not lost (SIGTERM is converted to a normal exit by the monitor).
        exit_flush = _register_trace_flush(args.trace)
    try:
        with obs.span(f"cli.{args.command}"):
            code = _dispatch(args)
    except FaultSpecError as exc:
        # A bad --inject-faults/--faults spec is an argument error (2),
        # not a runtime failure (1) — same contract as bad window specs.
        print(f"error: {exc}", file=sys.stderr)
        code = 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = 1
    if args.profile:
        # Rollup before the trace flush below disables the tracer.
        print("\nprofile rollup (per stage):")
        print(format_profile_rollup(profile_rollup(obs.get_tracer().spans)))
        profile_mod.disable_profiling()
        if not args.trace:
            obs.disable_tracing()
    if args.trace:
        # Flush the trace even when the command failed; a failed write
        # only overrides a successful command's exit code.
        trace_code = _write_trace_file(args.trace)
        atexit.unregister(exit_flush)
        if code == 0:
            code = trace_code
    return code


def _register_trace_flush(path: str) -> Callable[[], None]:
    """Arm an atexit hook that writes the trace if nobody else has."""

    def flush() -> None:
        tracer = obs.get_tracer()
        if tracer.enabled:
            _write_trace_file(path)

    atexit.register(flush)
    return flush


def _write_trace_file(path: str) -> int:
    """Flush the recorded trace; returns a nonzero code if writing failed."""
    tracer = obs.get_tracer()
    try:
        write_trace(tracer, path)
        print(f"wrote trace ({len(tracer.spans)} spans) to {path}")
        return 0
    except OSError as exc:
        print(f"error: could not write trace: {exc}", file=sys.stderr)
        return 1
    finally:
        obs.disable_tracing()


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "alerts":
        return _cmd_alerts(args)
    if args.command == "bench-diff":
        return _cmd_bench_diff(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    study = DecentralizationStudy(seed=args.seed, workers=args.workers)
    if args.command == "monitor":
        return _cmd_monitor(study, args)
    if args.command == "simulate":
        return _cmd_simulate(study, args)
    if args.command == "measure":
        return _cmd_measure(study, args)
    if args.command == "figure":
        return _cmd_figure(study, args)
    if args.command == "study":
        return _cmd_study(study)
    if args.command == "report":
        return _cmd_report(study, args)
    if args.command == "layers":
        return _cmd_layers(study, args)
    if args.command == "query":
        return _cmd_query(study, args)
    if args.command == "analyze":
        return _cmd_analyze(study, args)
    raise AssertionError(f"unhandled command {args.command!r}")


def _cmd_simulate(study: DecentralizationStudy, args: argparse.Namespace) -> int:
    chain = study.chain(_CHAIN_KEYS[args.chain])
    write_csv(chain.block_table(), args.out)
    print(
        f"wrote {chain.n_blocks} blocks "
        f"(heights {chain.start_height}..{chain.end_height}) to {args.out}"
    )
    return 0


def _cmd_measure(study: DecentralizationStudy, args: argparse.Namespace) -> int:
    chain_key = _CHAIN_KEYS[args.chain]
    if args.inject_faults:
        from repro.core.engine import MeasurementEngine

        result = _faulted_ingest(
            study.chain(chain_key), args.inject_faults, args.seed,
            repair_policy=args.repair_policy,
        )
        print(
            f"faulted ingest: {len(result.report.issues)} issue(s) detected, "
            f"{result.report.refetched} refetched, "
            f"{result.report.interpolated} interpolated, "
            f"{result.report.dropped} dropped"
        )
        engine = MeasurementEngine.from_chain(
            result.chain, quality=result.report.as_dict(), workers=args.workers
        )
    else:
        engine = study.engine(chain_key)
    windows = args.windows
    if windows.startswith("fixed-"):
        series = engine.measure_calendar(args.metric, windows.removeprefix("fixed-"))
    elif windows.startswith("sliding-"):
        spec = windows.removeprefix("sliding-")
        try:
            if "/" in spec:
                size_text, step_text = spec.split("/", 1)
                size, step = int(size_text), int(step_text)
            else:
                size, step = int(spec), None
        except ValueError:
            print(
                f"error: bad sliding window spec {windows!r} "
                "(expected sliding-<N> or sliding-<N>/<M>)",
                file=sys.stderr,
            )
            return 2
        series = engine.measure_sliding(args.metric, size, step)
    else:
        print(f"error: unknown window family {windows!r}", file=sys.stderr)
        return 2
    print(summarize(series))
    print(format_series_rows({args.metric: series}))
    if args.chart:
        print(ascii_chart(series))
    if args.out:
        series_to_csv(series, args.out)
        print(f"wrote {len(series)} points to {args.out}")
    return 0


def _cmd_figure(study: DecentralizationStudy, args: argparse.Namespace) -> int:
    if args.id == "all":
        for figure in study.all_figures():
            _print_figure(figure, args)
        return 0
    figure_id = args.id if args.id.startswith("fig") else f"fig{args.id}"
    _print_figure(study.figure(figure_id), args)
    return 0


def _print_figure(figure, args: argparse.Namespace) -> None:
    print(f"{figure.figure_id}: {figure.title}")
    for label, series in sorted(figure.series.items()):
        print(f"  {label}: {summarize(series)}")
        if args.chart:
            print(ascii_chart(series))
    for key, value in sorted(figure.notes.items()):
        print(f"  note {key} = {value:.4f}")
    for distribution in figure.distributions:
        print(f"  window {distribution.window_label}: "
              f"{distribution.n_producers} producers")
        for name, share in distribution.top:
            print(f"    {name:<40s} {share:6.2%}")
        print(f"    {'<other>':<40s} {distribution.other_share:6.2%}")
    if args.export_dir:
        paths = export_figure(figure, args.export_dir)
        print(f"exported {len(paths)} files to {args.export_dir}")


def _cmd_study(study: DecentralizationStudy) -> int:
    findings = study.findings()
    print("Level comparison (which chain is more decentralized):")
    for comparison in findings.level:
        direction = "higher" if comparison.higher_is_more_decentralized else "lower"
        print(
            f"  {comparison.metric_name:<10s} ({direction} = more decentralized): "
            f"btc={comparison.mean_a:.4f} eth={comparison.mean_b:.4f} "
            f"-> {comparison.winner}"
        )
    print("Stability comparison (lower CV = more stable):")
    for comparison in findings.stability.comparisons:
        print(
            f"  {comparison.metric_name:<10s}: "
            f"btc CV={comparison.cv_a:.4f} eth CV={comparison.cv_b:.4f} "
            f"-> {comparison.winner}"
        )
    print(f"More decentralized: {findings.more_decentralized}")
    print(f"More stable:        {findings.more_stable}")
    return 0


def _cmd_report(study: DecentralizationStudy, args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    text = generate_report(study, path=args.out)
    print(f"wrote {len(text.splitlines())} lines to {args.out}")
    return 0


def _cmd_layers(study: DecentralizationStudy, args: argparse.Namespace) -> int:
    from repro.chain.pools import bitcoin_pools_2019, ethereum_pools_2019
    from repro.network import (
        NetworkParams,
        betweenness_concentration,
        degree_gini,
        generate_network,
        network_nakamoto,
        stale_rate,
    )
    from repro.rewards import (
        BITCOIN_REWARDS_2019,
        ETHEREUM_REWARDS_2019,
        cumulative_wealth_series,
        reward_credits,
    )

    which = _CHAIN_KEYS[args.chain]
    chain = study.chain(which)
    engine = study.engine(which)
    if which == "btc":
        registry, schedule = bitcoin_pools_2019(), BITCOIN_REWARDS_2019
    else:
        registry, schedule = ethereum_pools_2019(), ETHEREUM_REWARDS_2019

    print(f"=== {chain.spec.name}: decentralization by layer ===")
    print("consensus layer (the paper):")
    for metric in ("gini", "entropy", "nakamoto"):
        series = engine.measure_calendar(metric, "day")
        print(f"  daily {metric:<10s} mean={series.mean():.4f} "
              f"range=[{series.min():.3f}, {series.max():.3f}]")

    network = generate_network(
        NetworkParams(
            n_nodes=args.nodes,
            pools=tuple(p.name for p in registry.pools),
            seed=args.seed,
        )
    )
    print(f"network layer ({network.n_nodes} nodes, {network.n_edges} edges):")
    print(f"  degree gini        = {degree_gini(network):.4f}")
    print(f"  betweenness gini   = {betweenness_concentration(network, sample=100):.4f}")
    print(f"  network nakamoto   = {network_nakamoto(network, sample=100)}")
    print(f"  stale rate         = {stale_rate(network, chain.spec.target_interval):.4%}")

    wealth = reward_credits(chain, schedule, seed=args.seed)
    gini_series = cumulative_wealth_series(wealth, "gini", checkpoints=12)
    nakamoto_series = cumulative_wealth_series(wealth, "nakamoto", checkpoints=12)
    print("wealth layer (cumulative income):")
    print(f"  total paid out     = {wealth.total_weight:,.0f} native units")
    print(f"  year-end gini      = {gini_series.values[-1]:.4f}")
    print(f"  year-end nakamoto  = {nakamoto_series.values[-1]:.0f}")
    return 0


def _chain_engine(
    study: DecentralizationStudy, args: argparse.Namespace
) -> QueryEngine | None:
    """Build a query engine over the chain's tables per the CLI flags.

    Returns None (after printing an error) when an ``--index`` spec is
    malformed; bad table/column names surface as :class:`ReproError`
    from the engine.
    """
    chain = study.chain(_CHAIN_KEYS[args.chain])
    disable = set(getattr(args, "disable", []) or [])
    options = PlannerOptions.with_disabled(sorted(disable - {"optimizer"}))
    engine = QueryEngine(
        {"blocks": chain.block_table(), "credits": chain.to_table()},
        workers=args.workers,
        optimizer="optimizer" not in disable,
        options=options,
    )
    for spec in args.index:
        table, sep, rest = spec.partition(".")
        column, _, kind = rest.partition(":")
        if not sep or not column:
            print(
                f"error: bad --index spec {spec!r} "
                "(expected TABLE.COLUMN[:KIND])",
                file=sys.stderr,
            )
            return None
        engine.create_index(table, column, kind or "auto")
    return engine


def _cmd_query(study: DecentralizationStudy, args: argparse.Namespace) -> int:
    engine = _chain_engine(study, args)
    if engine is None:
        return 2
    if args.analyze:
        engine.analyze()
    if args.explain:
        print(engine.explain(args.sql))
        return 0
    if args.explain_analyze:
        result, root = engine.explain_analyze(args.sql)
        print(format_plan(root))
        print()
    else:
        result = engine.execute(args.sql)
    for row in result.head(args.limit).to_rows():
        print(row)
    if result.num_rows > args.limit:
        print(f"... ({result.num_rows - args.limit} more rows)")
    return 0


def _cmd_analyze(study: DecentralizationStudy, args: argparse.Namespace) -> int:
    engine = _chain_engine(study, args)
    if engine is None:
        return 2
    summary = engine.analyze(args.table)
    for row in summary.to_rows():
        print(row)
    for table in ("blocks", "credits"):
        specs = engine.index_specs(table)
        for column, kind in sorted(specs.items()):
            print(f"index {table}.{column} kind={kind}")
    return 0


def _parse_alert_specs(
    specs: Sequence[str], kind: str
) -> list[tuple[str, float]] | None:
    """Parse repeated ``METRIC=VALUE`` flags; None means a spec was bad."""
    parsed: list[tuple[str, float]] = []
    for spec in specs:
        metric, _, value_text = spec.partition("=")
        try:
            value = float(value_text)
        except ValueError:
            print(
                f"error: bad --alert-{kind} spec {spec!r} "
                "(expected METRIC=VALUE)",
                file=sys.stderr,
            )
            return None
        parsed.append((metric, value))
    return parsed


def _faulted_ingest(source, spec: str, seed: int, repair_policy: str = "refetch"):
    """Ingest ``source`` through a seeded fault injector with retries."""
    from repro.resilience import FaultInjector, fetch_chain, parse_fault_spec
    from repro.resilience.retry import ManualClock, RetryPolicy

    plan = parse_fault_spec(spec)
    return fetch_chain(
        source,
        injector=FaultInjector(plan, seed=seed),
        retry_policy=RetryPolicy(max_attempts=8, base_delay=0.01, max_delay=0.25),
        clock=ManualClock(),
        repair_policy=repair_policy,
        seed=seed,
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    import tempfile

    from repro.chain.pools import bitcoin_pools_2019, ethereum_pools_2019
    from repro.core.engine import MeasurementEngine
    from repro.data.cache import cached_chain
    from repro.data.store import ChainStore
    from repro.resilience import (
        FaultInjector,
        FaultPlan,
        chain_from_raw_blocks,
        chains_equal,
        fetch_chain,
        parse_fault_spec,
        raw_blocks,
    )
    from repro.resilience.faults import corrupt_file_bytes
    from repro.resilience.retry import ManualClock, RetryPolicy
    from repro.simulation.scenarios import simulate_bitcoin_2019, simulate_ethereum_2019

    if args.blocks <= 0:
        print(f"error: --blocks must be positive, got {args.blocks}", file=sys.stderr)
        return 2
    if args.page_size <= 0:
        print(
            f"error: --page-size must be positive, got {args.page_size}",
            file=sys.stderr,
        )
        return 2
    plan = parse_fault_spec(args.faults) if args.faults else FaultPlan.default()

    if _CHAIN_KEYS[args.chain] == "btc":
        full, registry = simulate_bitcoin_2019(seed=args.seed), bitcoin_pools_2019()
    else:
        full, registry = simulate_ethereum_2019(seed=args.seed), ethereum_pools_2019()
    n = min(args.blocks, full.n_blocks)
    source = chain_from_raw_blocks(full.spec, raw_blocks(full, 0, n))
    print(
        f"chaos drill: {source.spec.name} prefix of {n} blocks, "
        f"seed={args.seed}, faults={';'.join(plan.kinds)}"
    )

    clean = fetch_chain(source, page_size=args.page_size)
    injector = FaultInjector(plan, seed=args.seed)
    faulted = fetch_chain(
        source,
        page_size=args.page_size,
        injector=injector,
        retry_policy=RetryPolicy(max_attempts=8, base_delay=0.01, max_delay=0.25),
        clock=ManualClock(),
        repair_policy=args.repair_policy,
        seed=args.seed,
    )
    fired = {kind: count for kind, count in sorted(injector.fired.items()) if count}
    print(
        "faults fired: "
        + (", ".join(f"{k} x{v}" for k, v in fired.items()) or "none")
    )
    report = faulted.report
    print(
        f"integrity: {len(report.issues)} issue(s) detected, "
        f"{report.refetched} refetched, {report.interpolated} interpolated, "
        f"{report.dropped} dropped, {report.deduplicated} deduplicated"
    )

    failures: list[str] = []
    if not chains_equal(clean.chain, faulted.chain):
        failures.append("recovered chain diverges from the clean ingest")

    window = source.spec.window_day
    for attribution in ("per-address", "first-address", "fractional", "pool"):
        clean_engine = MeasurementEngine.from_chain(clean.chain, attribution, registry)
        faulted_engine = MeasurementEngine.from_chain(
            faulted.chain, attribution, registry, quality=report.as_dict()
        )
        for metric in ("gini", "entropy", "nakamoto"):
            a = clean_engine.measure_sliding(metric, window)
            b = faulted_engine.measure_sliding(metric, window)
            if a.values.tobytes() != b.values.tobytes():
                failures.append(f"{attribution}/{metric} series not byte-identical")
    print(
        "metric series: 4 attribution policies x 3 metrics "
        f"over sliding-{window} compared byte-for-byte"
    )

    # The corrupt_cache half of the drill: flipped bytes in a stored
    # partition must be caught by its checksum and healed by a rebuild.
    with tempfile.TemporaryDirectory() as tmp:
        store = ChainStore(tmp)
        store.save("chaos", clean.chain)
        partition = sorted((store.root / "chaos").glob("part-*.npz"))[0]
        corrupt_file_bytes(partition)
        rebuilt = cached_chain(store, "chaos", lambda: clean.chain)
        if store.verify("chaos") or not chains_equal(rebuilt, clean.chain):
            failures.append("cache corruption was not detected and rebuilt")
        else:
            print("cache: corrupted partition caught by checksum and rebuilt")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: recovery byte-identical across {len(fired)} fault class(es) "
        f"(+ cache corruption healed)"
    )
    return 0


def _block_feed(chain, limit: int | None) -> Iterator[list[str]]:
    """Yield each block's producer names, optionally truncated to ``limit``."""
    n_blocks = chain.n_blocks if limit is None else min(limit, chain.n_blocks)
    offsets, ids, names = chain.offsets, chain.producer_ids, chain.producer_names
    for i in range(n_blocks):
        yield [names[pid] for pid in ids[offsets[i]:offsets[i + 1]]]


def _cmd_monitor(study: DecentralizationStudy, args: argparse.Namespace) -> int:
    from repro.core.streaming import ThresholdRule
    from repro.errors import ValidationError
    from repro.obs.alerts import AlertRule, JSONLSink, WebhookSink
    from repro.obs.slo import load_slo_file
    from repro.serve import run_monitor

    if args.window <= 0:
        print(f"error: --window must be positive, got {args.window}", file=sys.stderr)
        return 2
    if args.stride is not None and args.stride <= 0:
        print(f"error: --stride must be positive, got {args.stride}", file=sys.stderr)
        return 2
    if args.blocks is not None and args.blocks <= 0:
        print(f"error: --blocks must be positive, got {args.blocks}", file=sys.stderr)
        return 2
    if args.serve is not None and not 0 <= args.serve <= 65535:
        print(f"error: --serve port out of range: {args.serve}", file=sys.stderr)
        return 2
    if args.throttle < 0:
        print(f"error: --throttle must be >= 0, got {args.throttle}", file=sys.stderr)
        return 2
    if args.max_restarts is not None and args.max_restarts < 0:
        print(
            f"error: --max-restarts must be >= 0, got {args.max_restarts}",
            file=sys.stderr,
        )
        return 2
    overload = None
    if (
        args.max_inflight is not None
        or args.rate_limit is not None
        or args.cache_ttl != 1.0
    ):
        from repro.serve import OverloadConfig, parse_rate_limit

        rate, burst = (None, None)
        if args.rate_limit is not None:
            try:
                rate, burst = parse_rate_limit(args.rate_limit)
            except ValidationError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        try:
            overload = OverloadConfig(
                max_inflight=args.max_inflight,
                max_queue=args.admission_queue,
                rate_limit=rate,
                burst=burst,
                cache_ttl=args.cache_ttl,
            )
        except ValidationError as exc:
            # Bad overload knobs are argument errors, same contract as
            # bad windows or fault specs.
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.ingest_queue is not None and args.ingest_queue < 1:
        print(
            f"error: --ingest-queue must be >= 1, got {args.ingest_queue}",
            file=sys.stderr,
        )
        return 2
    injector = None
    if args.inject_faults:
        from repro.resilience import FaultInjector, parse_fault_spec

        # A bad spec raises FaultSpecError -> exit 2 in main().
        injector = FaultInjector(parse_fault_spec(args.inject_faults), seed=args.seed)
    below = _parse_alert_specs(args.alert_below, "below")
    above = _parse_alert_specs(args.alert_above, "above")
    if below is None or above is None:
        return 2
    monitored = ("gini", "entropy", "nakamoto")
    # Progress metrics exist only in the stateful engine's value map, not
    # in the streaming monitor's window evaluations.
    progress = ("lag_blocks", "blocks_ingested")
    rules = []
    extra_alert_rules = []
    for metric, value in below:
        if metric in monitored:
            rules.append(ThresholdRule(metric, below=value))
        elif metric in progress:
            extra_alert_rules.append(
                AlertRule(f"{metric}-below-{value:g}", metric=metric, below=value)
            )
        else:
            print(f"error: unknown alert metric {metric!r}", file=sys.stderr)
            return 2
    for metric, value in above:
        if metric in monitored:
            rules.append(ThresholdRule(metric, above=value))
        elif metric in progress:
            extra_alert_rules.append(
                AlertRule(f"{metric}-above-{value:g}", metric=metric, above=value)
            )
        else:
            print(f"error: unknown alert metric {metric!r}", file=sys.stderr)
            return 2
    for metric in args.anomaly:
        if metric not in monitored:
            print(f"error: unknown --anomaly metric {metric!r}", file=sys.stderr)
            return 2
    slos = []
    if args.slo:
        try:
            slos = load_slo_file(args.slo)
        except ValidationError as exc:
            # A malformed SLO file is an argument error, same contract as
            # bad window or fault specs.
            print(f"error: {exc}", file=sys.stderr)
            return 2
    alert_sinks = []
    if args.alert_log:
        alert_sinks.append(JSONLSink(args.alert_log))
    if args.alert_webhook:
        alert_sinks.append(WebhookSink(args.alert_webhook))

    # `monitor --serve` is a long-running process: enable metric recording
    # so counters/timings from the pipeline reach /metrics scrapes, and
    # convert SIGINT/SIGTERM into a clean stop (flushing --trace output).
    enabled_here = False
    if args.serve is not None and not obs.tracing_enabled():
        obs.enable_tracing()
        enabled_here = True
    stop_event = threading.Event()
    previous_handlers: list[tuple[int, object]] = []
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers.append((signum, signal.getsignal(signum)))
            signal.signal(signum, lambda *_: stop_event.set())
    try:
        chain_key = _CHAIN_KEYS[args.chain]
        chain = study.chain(chain_key)
        total = chain.n_blocks if args.blocks is None else min(args.blocks, chain.n_blocks)
        print(
            f"monitoring {chain.spec.name}: window={args.window} "
            f"stride={args.stride or max(args.window // 2, 1)} "
            f"blocks={total}",
            flush=True,
        )
        result = run_monitor(
            _block_feed(chain, args.blocks),
            args.window,
            args.stride,
            chain=chain.spec.name,
            rules=rules,
            total_blocks=total,
            serve_port=args.serve,
            throttle=args.throttle,
            linger=args.linger,
            port_file=args.port_file,
            stop_event=stop_event,
            print_fn=lambda line: print(line, flush=True),
            max_restarts=args.max_restarts,
            injector=injector,
            slos=slos,
            alert_sinks=alert_sinks,
            anomaly_metrics=args.anomaly,
            extra_alert_rules=extra_alert_rules,
            overload=overload,
            ingest_queue=args.ingest_queue,
            ingest_policy=args.ingest_policy,
        )
    finally:
        for signum, handler in previous_handlers:
            signal.signal(signum, handler)
        if enabled_here:
            obs.disable_tracing()
    latest = ", ".join(f"{k}={v:.4f}" for k, v in sorted(result.latest.items()))
    restarts = f", {result.restarts} restart(s)" if result.restarts else ""
    if result.ingest_dropped:
        restarts += f", {result.ingest_dropped} block(s) dropped by ingest queue"
    lifecycle = (
        f", {result.alerts_fired} fired/{result.alerts_resolved} resolved"
        if result.alerts_fired or result.alerts_resolved
        else ""
    )
    print(
        f"monitored {result.blocks} blocks: {result.evaluations} evaluations, "
        f"{result.alerts} alerts{lifecycle}{restarts}"
    )
    if latest:
        print(f"latest: {latest}")
    return 0


def _cmd_alerts(args: argparse.Namespace) -> int:
    import json as json_mod
    import time as time_mod

    from repro.obs.alerts import format_alert_event

    if args.lines is not None and args.lines < 0:
        print(f"error: --lines must be >= 0, got {args.lines}", file=sys.stderr)
        return 2
    if args.interval <= 0:
        print(f"error: --interval must be > 0, got {args.interval}", file=sys.stderr)
        return 2

    def emit(lines: list[str], skipped: int, limit: int | None = None) -> int:
        events = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json_mod.loads(line))
            except json_mod.JSONDecodeError:
                skipped += 1
        if limit is not None:
            events = events[-limit:] if limit > 0 else []
        for event in events:
            print(format_alert_event(event), flush=True)
        return skipped

    try:
        with open(args.file, "r", encoding="utf-8") as fh:
            skipped = emit(fh.readlines(), 0, limit=args.lines)
            if not args.follow:
                if skipped:
                    print(
                        f"warning: skipped {skipped} malformed line(s)",
                        file=sys.stderr,
                    )
                return 0
            # Follow mode: keep reading appended lines until Ctrl-C (a
            # partial final line is retried on the next poll).
            buffer = ""
            while True:
                chunk = fh.read()
                if chunk:
                    buffer += chunk
                    whole, _, buffer = buffer.rpartition("\n")
                    if whole:
                        skipped = emit(whole.splitlines(), skipped)
                else:
                    time_mod.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except OSError as exc:
        print(f"error: cannot read alert log {args.file}: {exc}", file=sys.stderr)
        return 1


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    if args.fail_over is not None and args.fail_over <= 1.0:
        print(
            f"error: --fail-over must be > 1.0 (a growth ratio), "
            f"got {args.fail_over}",
            file=sys.stderr,
        )
        return 2
    if args.min_seconds < 0:
        print(
            f"error: --min-seconds must be >= 0, got {args.min_seconds}",
            file=sys.stderr,
        )
        return 2
    old = load_benchmark_file(args.old)
    new = load_benchmark_file(args.new)
    report = compare_benchmarks(old, new, min_seconds=args.min_seconds)
    print(format_comparison(report, tolerance=args.fail_over))
    if args.fail_over is None:
        return 0
    regressions = report.regressions(args.fail_over)
    if regressions:
        worst = regressions[0]
        print(
            f"error: {len(regressions)} regression(s) past "
            f"{args.fail_over:.2f}x; worst: {worst.key} at {worst.ratio:.2f}x",
            file=sys.stderr,
        )
        return 1
    print(f"ok: no median regressed past {args.fail_over:.2f}x")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.validate:
        summary = validate_trace_file(args.file)
        print(
            f"{summary['path']}: valid {summary['format']} trace "
            f"({summary['n_spans']} spans, {summary['n_counters']} counters, "
            f"{summary['n_gauges']} gauges, {summary['n_timings']} timings)"
        )
        return 0
    # The summary tolerates corrupt/truncated records (a monitor killed
    # mid-write leaves a partial final line): skip with a counted warning,
    # fail only when nothing at all was readable.
    text, n_records, skipped = summarize_trace_file_lenient(args.file)
    if skipped:
        print(
            f"warning: skipped {skipped} corrupt record(s) in {args.file}",
            file=sys.stderr,
        )
    if n_records == 0:
        print(f"error: no readable records in {args.file}", file=sys.stderr)
        return 1
    print(text)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.errors import ValidationError
    from repro.serve import LoadgenConfig, print_report, run_loadgen

    if args.url and args.port is not None:
        print("error: pass --url or --port, not both", file=sys.stderr)
        return 2
    if not args.url and args.port is None:
        print("error: repro loadgen needs --url or --port", file=sys.stderr)
        return 2
    url = args.url or f"http://127.0.0.1:{args.port}"
    try:
        config = LoadgenConfig(
            url=url,
            path=args.path,
            duration=args.duration,
            clients=args.clients,
            rps=args.rps,
            mode=args.mode,
            timeout=args.timeout,
        )
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_loadgen(config)
    print_report(report)
    if args.fail_on_unhandled and not report.ok():
        print(
            f"error: {report.errors} connection error(s) and "
            f"{report.unhandled_5xx} unhandled 5xx response(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import run_top

    if args.url and args.port is not None:
        print("error: pass --url or --port, not both", file=sys.stderr)
        return 2
    if not args.url and args.port is None:
        print("error: repro top needs --url or --port", file=sys.stderr)
        return 2
    if args.interval <= 0:
        print(f"error: --interval must be > 0, got {args.interval}", file=sys.stderr)
        return 2
    url = args.url or f"http://127.0.0.1:{args.port}/status"
    if not url.rstrip("/").endswith("/status"):
        url = url.rstrip("/") + "/status"
    try:
        return run_top(
            url,
            interval=args.interval,
            iterations=args.iterations,
            clear=not args.no_clear,
        )
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
