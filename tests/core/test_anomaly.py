"""Tests for anomaly detectors."""

import numpy as np
import pytest

from repro.core.anomaly import iqr_anomalies, rolling_mad_anomalies, zscore_anomalies
from repro.errors import MeasurementError
from tests.core.test_series import make_series


class TestZscore:
    def test_detects_single_outlier(self):
        values = [1.0] * 20 + [50.0] + [1.0] * 20
        report = zscore_anomalies(make_series(values), threshold=3.0)
        assert report.positions == (20,)
        assert report.values == (50.0,)
        assert bool(report)

    def test_no_outliers_in_flat_series(self):
        report = zscore_anomalies(make_series([5.0] * 30))
        assert report.count == 0
        assert not report

    def test_short_series_no_crash(self):
        assert zscore_anomalies(make_series([1.0, 9.0])).count == 0

    def test_threshold_validated(self):
        with pytest.raises(MeasurementError):
            zscore_anomalies(make_series([1.0, 2.0, 3.0]), threshold=0.0)

    def test_labels_carried(self):
        values = [1.0] * 10 + [99.0]
        report = zscore_anomalies(make_series(values), threshold=2.0)
        assert report.labels == ("w10",)


class TestIqr:
    def test_detects_both_tails(self):
        values = [10.0] * 20 + [0.0, 30.0]
        report = iqr_anomalies(make_series(values))
        assert set(report.values) == {0.0, 30.0}

    def test_small_series_no_crash(self):
        assert iqr_anomalies(make_series([1.0, 2.0, 3.0])).count == 0

    def test_k_widens_fences(self):
        values = list(np.linspace(0, 1, 40)) + [2.5]
        strict = iqr_anomalies(make_series(values), k=1.0)
        loose = iqr_anomalies(make_series(values), k=10.0)
        assert strict.count >= loose.count

    def test_k_validated(self):
        with pytest.raises(MeasurementError):
            iqr_anomalies(make_series([1.0] * 5), k=-1.0)


class TestRollingMad:
    def test_detects_local_spike_on_drifting_series(self):
        # A slow upward drift with one local spike: a global z-score may
        # miss it, the rolling detector must not.
        drift = list(np.linspace(0.0, 10.0, 60))
        drift[30] += 3.0
        report = rolling_mad_anomalies(make_series(drift), window=9, threshold=6.0)
        assert 30 in report.positions

    def test_flat_series_clean(self):
        report = rolling_mad_anomalies(make_series([1.0] * 40))
        assert report.count == 0

    def test_short_series_no_crash(self):
        assert rolling_mad_anomalies(make_series([1.0] * 5), window=15).count == 0

    def test_window_validated(self):
        with pytest.raises(MeasurementError):
            rolling_mad_anomalies(make_series([1.0] * 20), window=2)

    def test_threshold_validated(self):
        with pytest.raises(MeasurementError):
            rolling_mad_anomalies(make_series([1.0] * 20), threshold=0.0)


class TestReportShape:
    def test_repr(self):
        report = zscore_anomalies(make_series([1.0] * 10 + [9.0]), threshold=2.0)
        assert "zscore" in repr(report)
        assert report.method == "zscore"
