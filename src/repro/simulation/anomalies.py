"""Anomaly injection.

Two anomaly families reproduce the events the paper analyses:

* :class:`MultiCoinbaseEvent` — a block whose coinbase pays out to many
  independent addresses (the paper's §II-C1d: Bitcoin blocks 558,473 and
  558,545 on Jan 14, 2019 credited >80 and >90 producers).  Under the
  per-address attribution policy such a block floods the day's producer
  population with one-credit entities: Gini collapses, entropy spikes and
  the Nakamoto coefficient explodes.
* :class:`ShareSpike` — a pool's hashrate temporarily multiplied for a run
  of days.  Placed across a week boundary it creates exactly the
  cross-interval signal (§III-A) that fixed windows dilute and sliding
  windows reveal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class MultiCoinbaseEvent:
    """Inject a block with ``n_addresses`` extra coinbase payout addresses.

    The block keeps its originally drawn producer and gains ``n_addresses``
    fresh one-off addresses, so it is credited to ``n_addresses + 1``
    producers under per-address attribution.
    """

    #: 0-based day of 2019 on which the block occurs.
    day: int
    #: Fraction through the day's blocks at which the block sits (0..1).
    position: float
    #: Number of extra payout addresses.
    n_addresses: int

    def __post_init__(self) -> None:
        if not 0 <= self.day < 366:
            raise SimulationError(f"day must be within the year, got {self.day}")
        if not 0.0 <= self.position <= 1.0:
            raise SimulationError(f"position must be in [0, 1], got {self.position}")
        if self.n_addresses <= 0:
            raise SimulationError("n_addresses must be positive")


@dataclass(frozen=True)
class ShareSpike:
    """Multiply one pool's hashrate share for a run of (fractional) days.

    The spike is applied at *block* level from timestamp
    ``start_day * 86400`` for ``n_days * 86400`` seconds, so it can start
    and stop mid-day.  A one-day spike straddling midnight is diluted to
    ~50% intensity in each of the two fixed calendar days it touches, while
    a sliding window aligned with the spike sees it at full strength —
    precisely the cross-interval effect of paper §III-A / Fig. 13.
    """

    #: Pool name (must exist in the scenario's registry).
    pool_name: str
    #: Fractional 0-based day at which the spike starts (59.5 = noon of day 59).
    start_day: float
    #: Duration in (fractional) days.
    n_days: float
    factor: float

    def __post_init__(self) -> None:
        if self.n_days <= 0:
            raise SimulationError("n_days must be positive")
        if self.factor <= 0:
            raise SimulationError("factor must be positive")
        if self.start_day < 0:
            raise SimulationError("start_day must be >= 0")

    @property
    def start_ts(self) -> int:
        """Unix timestamp at which the spike begins."""
        from repro.util.timeutils import SECONDS_PER_DAY, YEAR_2019_START

        return YEAR_2019_START + int(round(self.start_day * SECONDS_PER_DAY))

    @property
    def end_ts(self) -> int:
        """Unix timestamp at which the spike ends (exclusive)."""
        from repro.util.timeutils import SECONDS_PER_DAY

        return self.start_ts + int(round(self.n_days * SECONDS_PER_DAY))
