"""Tests for the Block value type."""

import pytest

from repro.chain.block import Block
from repro.errors import ChainError


class TestBlock:
    def test_basic_fields(self):
        block = Block(height=556_459, timestamp=1_546_300_800, producers=("addr1",))
        assert block.primary_producer == "addr1"
        assert block.producer_count == 1
        assert block.tag is None

    def test_multi_producer_block(self):
        block = Block(height=1, timestamp=0, producers=("a", "b", "c"))
        assert block.producer_count == 3
        assert block.primary_producer == "a"

    def test_anomaly_threshold(self):
        normal = Block(height=1, timestamp=0, producers=("a",))
        weird = Block(height=2, timestamp=0, producers=tuple(f"p{i}" for i in range(85)))
        assert not normal.is_anomalous()
        assert weird.is_anomalous()
        assert weird.is_anomalous(threshold=85)
        assert not weird.is_anomalous(threshold=86)

    def test_negative_height_rejected(self):
        with pytest.raises(ChainError):
            Block(height=-1, timestamp=0, producers=("a",))

    def test_empty_producers_rejected(self):
        with pytest.raises(ChainError):
            Block(height=1, timestamp=0, producers=())

    def test_empty_address_rejected(self):
        with pytest.raises(ChainError):
            Block(height=1, timestamp=0, producers=("a", ""))

    def test_frozen(self):
        block = Block(height=1, timestamp=0, producers=("a",))
        with pytest.raises(AttributeError):
            block.height = 2
