"""Tests for the benchmark regression gate."""

import json
import math

import pytest

from repro.errors import ObservabilityError
from repro.obs.regression import (
    BenchEntry,
    Delta,
    compare_benchmarks,
    format_comparison,
    load_benchmark_file,
)


def write_bench(path, entries):
    """Write a minimal pytest-benchmark JSON file.

    ``entries`` maps name -> (median, {stage: (count, total_seconds)}).
    """
    benchmarks = []
    for name, (median, stages) in entries.items():
        benchmarks.append(
            {
                "name": name,
                "stats": {"median": median},
                "extra_info": {
                    "stages": {
                        stage: {"count": count, "total_seconds": total}
                        for stage, (count, total) in stages.items()
                    }
                },
            }
        )
    path.write_text(json.dumps({"benchmarks": benchmarks}), encoding="utf-8")
    return str(path)


class TestDelta:
    def test_ratio(self):
        assert Delta("k", old=2.0, new=3.0).ratio == pytest.approx(1.5)

    def test_both_zero_is_flat(self):
        assert Delta("k", old=0.0, new=0.0).ratio == 1.0

    def test_growth_from_zero_is_infinite(self):
        delta = Delta("k", old=0.0, new=0.1)
        assert math.isinf(delta.ratio)
        assert delta.regressed(1000.0)

    def test_regressed_is_strict(self):
        delta = Delta("k", old=1.0, new=1.25)
        assert not delta.regressed(1.25)
        assert delta.regressed(1.2)


class TestLoad:
    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_benchmark_file(str(tmp_path / "nope.json"))

    def test_invalid_json_raises_observability_error(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ObservabilityError, match="not valid JSON"):
            load_benchmark_file(str(path))

    def test_missing_benchmarks_list(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"results": []}', encoding="utf-8")
        with pytest.raises(ObservabilityError, match="benchmarks"):
            load_benchmark_file(str(path))

    def test_entry_without_median(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(
            '{"benchmarks": [{"name": "t", "stats": {}}]}', encoding="utf-8"
        )
        with pytest.raises(ObservabilityError, match="stats.median"):
            load_benchmark_file(str(path))

    def test_stages_become_per_call_seconds(self, tmp_path):
        path = write_bench(
            tmp_path / "bench.json",
            {"test_sweep": (0.5, {"attribute": (10, 2.0), "idle": (0, 0.0)})},
        )
        entries = load_benchmark_file(path)
        entry = entries["test_sweep"]
        assert entry.median == 0.5
        assert entry.stages == {"attribute": pytest.approx(0.2)}

    def test_entries_without_extra_info_load_fine(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(
            '{"benchmarks": [{"name": "t", "stats": {"median": 0.25}}]}',
            encoding="utf-8",
        )
        assert load_benchmark_file(str(path))["t"].stages == {}


class TestCompare:
    def test_headline_and_stage_deltas(self):
        old = {"b": BenchEntry("b", 1.0, {"s1": 0.5, "s2": 0.1})}
        new = {"b": BenchEntry("b", 2.0, {"s1": 0.6, "s3": 0.2})}
        report = compare_benchmarks(old, new)
        assert {d.key for d in report.deltas} == {"b", "b::s1"}
        headline = next(d for d in report.deltas if d.key == "b")
        assert headline.ratio == pytest.approx(2.0)

    def test_min_seconds_skips_micro_quantities(self):
        old = {"b": BenchEntry("b", 0.5, {"micro": 4e-5})}
        new = {"b": BenchEntry("b", 0.5, {"micro": 8e-5})}
        report = compare_benchmarks(old, new, min_seconds=1e-3)
        assert [d.key for d in report.deltas] == ["b"]

    def test_coverage_drift_is_reported(self):
        old = {"gone": BenchEntry("gone", 1.0, {})}
        new = {"fresh": BenchEntry("fresh", 1.0, {})}
        report = compare_benchmarks(old, new)
        assert report.missing == ("gone",)
        assert report.added == ("fresh",)
        assert report.deltas == ()

    def test_regressions_sorted_worst_first(self):
        old = {
            "a": BenchEntry("a", 1.0, {}),
            "b": BenchEntry("b", 1.0, {}),
            "c": BenchEntry("c", 1.0, {}),
        }
        new = {
            "a": BenchEntry("a", 1.5, {}),
            "b": BenchEntry("b", 3.0, {}),
            "c": BenchEntry("c", 0.9, {}),
        }
        regressions = compare_benchmarks(old, new).regressions(1.25)
        assert [d.key for d in regressions] == ["b", "a"]


class TestFormat:
    def test_table_flags_regressions_and_improvements(self):
        report = compare_benchmarks(
            {"slow": BenchEntry("slow", 1.0, {}), "fast": BenchEntry("fast", 1.0, {})},
            {"slow": BenchEntry("slow", 2.0, {}), "fast": BenchEntry("fast", 0.5, {})},
        )
        text = format_comparison(report, tolerance=1.25)
        assert "REGRESSED" in text
        assert "faster" in text
        assert "2.00x" in text

    def test_without_tolerance_no_verdicts(self):
        report = compare_benchmarks(
            {"b": BenchEntry("b", 1.0, {})}, {"b": BenchEntry("b", 2.0, {})}
        )
        assert "REGRESSED" not in format_comparison(report)

    def test_drift_and_empty_reports_render(self):
        report = compare_benchmarks(
            {"gone": BenchEntry("gone", 1.0, {})},
            {"fresh": BenchEntry("fresh", 1.0, {})},
        )
        text = format_comparison(report)
        assert "(only in old run)" in text
        assert "(only in new run)" in text
        assert "(no comparable benchmarks)" in text

    def test_unit_scaling(self):
        report = compare_benchmarks(
            {"b": BenchEntry("b", 2.5, {"µ": 5e-5, "m": 5e-3})},
            {"b": BenchEntry("b", 2.5, {"µ": 5e-5, "m": 5e-3})},
        )
        text = format_comparison(report)
        assert "s " in text
        assert "ms" in text
        assert "µs" in text


class TestRounds:
    def test_rounds_loaded_from_stats(self, tmp_path):
        path = tmp_path / "bench.json"
        payload = {
            "benchmarks": [
                {"name": "a", "stats": {"median": 1.0, "rounds": 7}, "extra_info": {}},
                {"name": "b", "stats": {"median": 1.0}, "extra_info": {}},
            ]
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        entries = load_benchmark_file(str(path))
        assert entries["a"].rounds == 7
        assert entries["b"].rounds == 0

    def test_under_sampled_flags_known_low_rounds(self):
        assert Delta("k", 1.0, 1.0, old_rounds=2, new_rounds=9).under_sampled
        assert Delta("k", 1.0, 1.0, old_rounds=9, new_rounds=4).under_sampled
        assert not Delta("k", 1.0, 1.0, old_rounds=5, new_rounds=5).under_sampled
        # Unknown rounds (0) must not trip the flag.
        assert not Delta("k", 1.0, 1.0, old_rounds=0, new_rounds=0).under_sampled

    def test_format_shows_rounds_and_under_sampled(self):
        report = compare_benchmarks(
            {"a": BenchEntry("a", 1.0, {}, rounds=2)},
            {"a": BenchEntry("a", 1.0, {}, rounds=6)},
        )
        text = format_comparison(report, tolerance=1.25)
        assert "2/6" in text
        assert "UNDER-SAMPLED" in text

    def test_format_dash_when_rounds_unknown(self):
        report = compare_benchmarks(
            {"a": BenchEntry("a", 1.0, {})}, {"a": BenchEntry("a", 1.0, {})}
        )
        text = format_comparison(report)
        assert "UNDER-SAMPLED" not in text


class TestStageSkips:
    OLD = {"a": BenchEntry("a", 1.0, {"shared": 0.5, "legacy": 0.2})}
    NEW = {"a": BenchEntry("a", 1.0, {"shared": 0.5, "fresh": 0.1})}

    def test_one_sided_stages_skipped_not_compared(self):
        report = compare_benchmarks(self.OLD, self.NEW)
        assert [d.key for d in report.deltas] == ["a", "a::shared"]
        assert report.stage_missing == ("a::legacy",)
        assert report.stage_added == ("a::fresh",)

    def test_skips_logged_as_warnings(self, caplog):
        with caplog.at_level("WARNING", logger="repro.obs.regression"):
            compare_benchmarks(self.OLD, self.NEW)
        messages = [record.getMessage() for record in caplog.records]
        assert any("a::legacy" in m and "old run" in m for m in messages)
        assert any("a::fresh" in m and "new run" in m for m in messages)

    def test_skips_rendered_in_table(self):
        report = compare_benchmarks(self.OLD, self.NEW)
        text = format_comparison(report)
        assert "(stage only in old run; skipped)" in text
        assert "(stage only in new run; skipped)" in text
