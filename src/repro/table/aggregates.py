"""Aggregate functions over arrays, whole-column and grouped.

Two entry points:

* :func:`aggregate_array` — reduce one array to a scalar.
* :func:`grouped_aggregate` — reduce one array per group, given a group-id
  vector, using vectorized numpy segment operations (no Python loop over
  groups for the numeric aggregates).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import TableError

#: Names accepted by ``Table.group_by(...).aggregate`` and the SQL engine.
AGGREGATE_NAMES = (
    "count",
    "count_distinct",
    "sum",
    "mean",
    "avg",
    "min",
    "max",
    "std",
    "var",
    "median",
    "first",
    "last",
)


def aggregate_array(values: np.ndarray, func: str) -> Any:
    """Reduce ``values`` (a 1-D array) to a scalar with aggregate ``func``."""
    func = _canonical(func)
    if func == "count":
        return int(values.shape[0])
    if func == "count_distinct":
        if values.dtype == object:
            return len(set(values.tolist()))
        return int(np.unique(values).shape[0])
    if values.shape[0] == 0:
        return None
    if func == "first":
        return _scalar(values[0])
    if func == "last":
        return _scalar(values[-1])
    if values.dtype == object:
        if func in ("min", "max"):
            reducer = min if func == "min" else max
            return reducer(values.tolist())
        raise TableError(f"aggregate {func!r} is not defined for string columns")
    if func == "sum":
        return _scalar(values.sum())
    if func == "mean":
        return float(values.mean())
    if func == "min":
        return _scalar(values.min())
    if func == "max":
        return _scalar(values.max())
    if func == "std":
        return float(values.std(ddof=0))
    if func == "var":
        return float(values.var(ddof=0))
    if func == "median":
        return float(np.median(values))
    raise TableError(f"unknown aggregate function: {func!r}")


def grouped_aggregate(
    values: np.ndarray,
    group_ids: np.ndarray,
    n_groups: int,
    func: str,
) -> np.ndarray:
    """Reduce ``values`` per group.

    ``group_ids`` assigns each row to a group in ``[0, n_groups)``; the
    result has one entry per group, in group-id order.  Empty groups (ids
    that never occur) yield 0 for ``count``/``sum`` and NaN/None otherwise.
    """
    func = _canonical(func)
    if values.shape[0] != group_ids.shape[0]:
        raise TableError("values and group_ids must have equal length")
    counts = np.bincount(group_ids, minlength=n_groups)
    if func == "count":
        return counts.astype(np.int64)
    if func == "count_distinct":
        return _grouped_count_distinct(values, group_ids, n_groups)
    if values.dtype == object or func in ("median", "first", "last", "min", "max"):
        return _grouped_via_sort(values, group_ids, n_groups, func, counts)
    floats = values.astype(np.float64)
    sums = np.bincount(group_ids, weights=floats, minlength=n_groups)
    if func == "sum":
        if np.issubdtype(values.dtype, np.integer):
            return np.bincount(group_ids, weights=floats, minlength=n_groups).astype(np.int64)
        return sums
    safe_counts = np.maximum(counts, 1)
    means = sums / safe_counts
    if func == "mean":
        return np.where(counts > 0, means, np.nan)
    if func in ("std", "var"):
        sq = np.bincount(group_ids, weights=floats * floats, minlength=n_groups)
        variance = np.maximum(sq / safe_counts - means * means, 0.0)
        variance = np.where(counts > 0, variance, np.nan)
        return np.sqrt(variance) if func == "std" else variance
    raise TableError(f"unknown aggregate function: {func!r}")


def _canonical(func: str) -> str:
    name = func.strip().lower()
    if name == "avg":
        return "mean"
    if name not in AGGREGATE_NAMES:
        raise TableError(f"unknown aggregate function: {func!r}")
    return name


def _scalar(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    return value


def _grouped_count_distinct(
    values: np.ndarray, group_ids: np.ndarray, n_groups: int
) -> np.ndarray:
    if values.dtype == object:
        codes = _factorize_objects(values)
    else:
        _, codes = np.unique(values, return_inverse=True)
    pairs = group_ids.astype(np.int64) * (int(codes.max()) + 1 if codes.size else 1) + codes
    unique_pairs = np.unique(pairs)
    owners = unique_pairs // (int(codes.max()) + 1 if codes.size else 1)
    return np.bincount(owners, minlength=n_groups).astype(np.int64)


def _factorize_objects(values: np.ndarray) -> np.ndarray:
    mapping: dict[Any, int] = {}
    codes = np.empty(values.shape[0], dtype=np.int64)
    for i, item in enumerate(values):
        code = mapping.get(item)
        if code is None:
            code = len(mapping)
            mapping[item] = code
        codes[i] = code
    return codes


def _grouped_via_sort(
    values: np.ndarray,
    group_ids: np.ndarray,
    n_groups: int,
    func: str,
    counts: np.ndarray,
) -> np.ndarray:
    """Order-preserving fallback: stable-sort rows by group, slice per group."""
    order = np.argsort(group_ids, kind="stable")
    sorted_values = values[order]
    boundaries = np.concatenate(([0], np.cumsum(counts)))
    is_object = values.dtype == object
    out_dtype = object if is_object else np.float64
    if func in ("first", "last", "min", "max") and not is_object:
        # Empty groups need NaN, which integer arrays cannot hold.
        out_dtype = values.dtype if counts.min(initial=1) > 0 else np.float64
    out = np.empty(n_groups, dtype=out_dtype)
    for gid in range(n_groups):
        start, stop = boundaries[gid], boundaries[gid + 1]
        segment = sorted_values[start:stop]
        if segment.shape[0] == 0:
            out[gid] = None if is_object else np.nan
            continue
        if func == "first":
            out[gid] = segment[0]
        elif func == "last":
            out[gid] = segment[-1]
        elif func == "min":
            out[gid] = min(segment.tolist()) if is_object else segment.min()
        elif func == "max":
            out[gid] = max(segment.tolist()) if is_object else segment.max()
        elif func == "median":
            if is_object:
                raise TableError("median is not defined for string columns")
            out[gid] = float(np.median(segment))
        else:
            raise TableError(f"aggregate {func!r} is not defined for string columns")
    return out
