"""Change-point detection on measurement series (extension).

The paper motivates sliding windows with "continuous trends and abnormal
situations"; a CUSUM detector makes the *trend-shift* side operational:
it flags windows where the series' level shifts persistently (e.g. a pool
gaining share over weeks), complementing the point-outlier detectors in
:mod:`repro.core.anomaly`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.series import MeasurementSeries
from repro.errors import MeasurementError


@dataclass(frozen=True)
class ChangePoint:
    """A detected persistent level shift."""

    #: Position within the series at which the shift is flagged.
    position: int
    label: str
    #: +1 for an upward shift, -1 for a downward shift.
    direction: int
    #: Peak CUSUM statistic (in sigma units) at the flag point.
    magnitude: float


@dataclass(frozen=True)
class ChangePointReport:
    """All change points found in one series."""

    threshold: float
    drift: float
    points: tuple[ChangePoint, ...]

    @property
    def count(self) -> int:
        """Number of change points found."""
        return len(self.points)

    def __bool__(self) -> bool:
        return self.count > 0

    def positions(self) -> tuple[int, ...]:
        """Series positions of all change points."""
        return tuple(p.position for p in self.points)


def cusum_changepoints(
    series: MeasurementSeries,
    threshold: float = 5.0,
    drift: float = 0.5,
    baseline: int = 20,
) -> ChangePointReport:
    """Two-sided, self-re-baselining CUSUM.

    Deviations are measured in global-sigma units against the *current
    segment's* baseline (the mean of its first ``baseline`` points).  When
    the upper/lower cumulative sum exceeds ``threshold`` a change point is
    flagged and a new segment — with a fresh baseline — starts there, so a
    persistent level shift is reported once rather than repeatedly.
    """
    if threshold <= 0:
        raise MeasurementError(f"threshold must be positive, got {threshold}")
    if drift < 0:
        raise MeasurementError(f"drift must be >= 0, got {drift}")
    if baseline < 2:
        raise MeasurementError(f"baseline must be >= 2, got {baseline}")
    values = series.values
    n = values.shape[0]
    if n < 3:
        return ChangePointReport(threshold=threshold, drift=drift, points=())
    sigma = float(values.std(ddof=0))
    if sigma == 0:
        return ChangePointReport(threshold=threshold, drift=drift, points=())
    points: list[ChangePoint] = []
    segment_start = 0
    while segment_start < n - 1:
        base_stop = min(segment_start + baseline, n)
        mean = float(values[segment_start:base_stop].mean())
        upper = 0.0
        lower = 0.0
        flagged = None
        for i in range(segment_start, n):
            deviation = (float(values[i]) - mean) / sigma
            upper = max(0.0, upper + deviation - drift)
            lower = min(0.0, lower + deviation + drift)
            if upper > threshold:
                flagged = ChangePoint(
                    position=i,
                    label=series.labels[i],
                    direction=1,
                    magnitude=float(upper),
                )
                break
            if lower < -threshold:
                flagged = ChangePoint(
                    position=i,
                    label=series.labels[i],
                    direction=-1,
                    magnitude=float(-lower),
                )
                break
        if flagged is None:
            break
        points.append(flagged)
        segment_start = flagged.position + 1
    return ChangePointReport(threshold=threshold, drift=drift, points=tuple(points))
