"""The BigQuery-shaped client over simulated public datasets."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.chain.chain import Chain
from repro.data.store import ChainStore
from repro.errors import SqlPlanError
from repro.simulation.scenarios import simulate_bitcoin_2019, simulate_ethereum_2019
from repro.sql import QueryEngine
from repro.table import Table

#: The public datasets this client serves, mirroring BigQuery's
#: ``bigquery-public-data.crypto_bitcoin`` / ``crypto_ethereum``.
PUBLIC_DATASETS = ("crypto_bitcoin", "crypto_ethereum")

#: Tables available in each dataset.
DATASET_TABLES = ("blocks", "credits")


@dataclass
class QueryJob:
    """A completed query: its result table plus bookkeeping."""

    sql: str
    _table: Table
    #: Wall-clock execution time in seconds.
    elapsed: float
    job_id: int

    @property
    def total_rows(self) -> int:
        """Number of rows in the result."""
        return self._table.num_rows

    def result(self) -> Table:
        """The query's result table."""
        return self._table

    def to_rows(self) -> list[dict]:
        """Shorthand for ``result().to_rows()``."""
        return self._table.to_rows()


class BigQueryClient:
    """Runs SQL against lazily simulated 2019 chain datasets.

    Datasets are simulated on first touch; pass a :class:`ChainStore` to
    persist them across processes (the simulate-once workflow the paper's
    one-off BigQuery extract corresponds to).
    """

    def __init__(self, seed: int = 2019, store: ChainStore | None = None) -> None:
        self._seed = seed
        self._store = store
        self._chains: dict[str, Chain] = {}
        self._engine = QueryEngine()
        self._loaded: set[str] = set()
        self._job_counter = 0

    # -- catalog ------------------------------------------------------------

    def list_datasets(self) -> tuple[str, ...]:
        """The available public datasets."""
        return PUBLIC_DATASETS

    def list_tables(self, dataset: str) -> tuple[str, ...]:
        """Tables within ``dataset``."""
        if dataset not in PUBLIC_DATASETS:
            raise SqlPlanError(
                f"unknown dataset {dataset!r}; available: {PUBLIC_DATASETS}"
            )
        return DATASET_TABLES

    def chain(self, dataset: str) -> Chain:
        """The chain behind ``dataset`` (simulating it if needed)."""
        if dataset not in PUBLIC_DATASETS:
            raise SqlPlanError(
                f"unknown dataset {dataset!r}; available: {PUBLIC_DATASETS}"
            )
        if dataset not in self._chains:
            self._chains[dataset] = self._build_chain(dataset)
        return self._chains[dataset]

    def _build_chain(self, dataset: str) -> Chain:
        def build() -> Chain:
            if dataset == "crypto_bitcoin":
                return simulate_bitcoin_2019(seed=self._seed)
            return simulate_ethereum_2019(seed=self._seed)

        if self._store is not None:
            from repro.data.cache import cached_chain

            return cached_chain(self._store, f"{dataset}-{self._seed}", build)
        return build()

    # -- querying --------------------------------------------------------------

    def query(self, sql: str) -> QueryJob:
        """Execute ``sql``; dataset-qualified tables load on demand."""
        self._ensure_tables(sql)
        started = time.perf_counter()
        result = self._engine.execute(sql)
        elapsed = time.perf_counter() - started
        self._job_counter += 1
        return QueryJob(sql=sql, _table=result, elapsed=elapsed, job_id=self._job_counter)

    def _ensure_tables(self, sql: str) -> None:
        """Register any referenced public tables with the SQL engine."""
        lowered = sql.lower()
        for dataset in PUBLIC_DATASETS:
            for table_name in DATASET_TABLES:
                qualified = f"{dataset}.{table_name}"
                if qualified in self._loaded or qualified not in lowered:
                    continue
                chain = self.chain(dataset)
                table = (
                    chain.block_table() if table_name == "blocks" else chain.to_table()
                )
                self._engine.register(qualified, table)
                self._loaded.add(qualified)
