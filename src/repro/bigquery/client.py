"""The BigQuery-shaped client over simulated public datasets."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.chain.chain import Chain
from repro.data.store import ChainStore
from repro.errors import SqlPlanError
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import CircuitBreaker, RetryPolicy, retry_call
from repro.simulation.scenarios import simulate_bitcoin_2019, simulate_ethereum_2019
from repro.sql import QueryEngine
from repro.table import Table

#: The public datasets this client serves, mirroring BigQuery's
#: ``bigquery-public-data.crypto_bitcoin`` / ``crypto_ethereum``.
PUBLIC_DATASETS = ("crypto_bitcoin", "crypto_ethereum")

#: Tables available in each dataset.
DATASET_TABLES = ("blocks", "credits")


@dataclass
class QueryJob:
    """A completed query: its result table plus bookkeeping."""

    sql: str
    _table: Table
    #: Wall-clock execution time in seconds.
    elapsed: float
    job_id: int

    @property
    def total_rows(self) -> int:
        """Number of rows in the result."""
        return self._table.num_rows

    def result(self) -> Table:
        """The query's result table."""
        return self._table

    def to_rows(self) -> list[dict]:
        """Shorthand for ``result().to_rows()``."""
        return self._table.to_rows()


class BigQueryClient:
    """Runs SQL against lazily simulated 2019 chain datasets.

    Datasets are simulated on first touch; pass a :class:`ChainStore` to
    persist them across processes (the simulate-once workflow the paper's
    one-off BigQuery extract corresponds to).

    Dataset loads optionally run under a retry policy and circuit breaker
    (transient faults from a ``FaultInjector`` — or a real flaky disk —
    are retried with backoff), and an injector with a ``corrupt_cache``
    rule gets a shot at the stored bytes before each load, exercising the
    store's checksum + auto-rebuild path.  With all three left ``None``
    every call is direct — the disabled path adds nothing.
    """

    def __init__(
        self,
        seed: int = 2019,
        store: ChainStore | None = None,
        *,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        injector: FaultInjector | None = None,
    ) -> None:
        self._seed = seed
        self._store = store
        self._retry_policy = retry_policy
        self._breaker = breaker
        self._injector = injector
        self._chains: dict[str, Chain] = {}
        self._engine = QueryEngine()
        self._loaded: set[str] = set()
        self._job_counter = 0

    # -- catalog ------------------------------------------------------------

    def list_datasets(self) -> tuple[str, ...]:
        """The available public datasets."""
        return PUBLIC_DATASETS

    def list_tables(self, dataset: str) -> tuple[str, ...]:
        """Tables within ``dataset``."""
        if dataset not in PUBLIC_DATASETS:
            raise SqlPlanError(
                f"unknown dataset {dataset!r}; available: {PUBLIC_DATASETS}"
            )
        return DATASET_TABLES

    def chain(self, dataset: str) -> Chain:
        """The chain behind ``dataset`` (simulating it if needed)."""
        if dataset not in PUBLIC_DATASETS:
            raise SqlPlanError(
                f"unknown dataset {dataset!r}; available: {PUBLIC_DATASETS}"
            )
        if dataset not in self._chains:
            self._chains[dataset] = self._build_chain(dataset)
        return self._chains[dataset]

    def _build_chain(self, dataset: str) -> Chain:
        def build() -> Chain:
            if dataset == "crypto_bitcoin":
                return simulate_bitcoin_2019(seed=self._seed)
            return simulate_ethereum_2019(seed=self._seed)

        name = f"{dataset}-{self._seed}"
        if (
            self._injector is not None
            and self._store is not None
            and self._store.exists(name)
        ):
            # Give a scheduled corrupt_cache fault a stored partition to
            # flip bytes in; the checksum on load catches it and
            # cached_chain rebuilds.
            partitions = sorted((self._store.root / name).glob("part-*.npz"))
            if partitions:
                self._injector.corrupt_file(partitions[0])

        def load() -> Chain:
            if self._injector is not None:
                self._injector.on_read(f"dataset:{dataset}")
            if self._store is not None:
                from repro.data.cache import cached_chain

                return cached_chain(self._store, name, build)
            return build()

        return retry_call(
            load,
            policy=self._retry_policy,
            breaker=self._breaker,
            seed=self._seed,
            name=f"chain:{dataset}",
        )

    # -- querying --------------------------------------------------------------

    def query(self, sql: str) -> QueryJob:
        """Execute ``sql``; dataset-qualified tables load on demand."""
        self._ensure_tables(sql)
        started = time.perf_counter()

        def execute() -> Table:
            if self._injector is not None:
                self._injector.on_read("query")
            return self._engine.execute(sql)

        result = retry_call(
            execute,
            policy=self._retry_policy,
            breaker=self._breaker,
            seed=self._seed,
            name="query",
        )
        elapsed = time.perf_counter() - started
        self._job_counter += 1
        return QueryJob(sql=sql, _table=result, elapsed=elapsed, job_id=self._job_counter)

    def _ensure_tables(self, sql: str) -> None:
        """Register any referenced public tables with the SQL engine."""
        lowered = sql.lower()
        for dataset in PUBLIC_DATASETS:
            for table_name in DATASET_TABLES:
                qualified = f"{dataset}.{table_name}"
                if qualified in self._loaded or qualified not in lowered:
                    continue
                chain = self.chain(dataset)
                table = (
                    chain.block_table() if table_name == "blocks" else chain.to_table()
                )
                self._engine.register(qualified, table)
                self._loaded.add(qualified)
