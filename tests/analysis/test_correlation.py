"""Tests for correlation / consistency analysis."""

import numpy as np
import pytest

from repro.analysis.correlation import (
    aggregate_series,
    fixed_vs_sliding_agreement,
    granularity_consistency,
    pearson_correlation,
    spearman_correlation,
)
from repro.errors import MeasurementError
from tests.core.test_series import make_series


class TestPearson:
    def test_perfect_positive(self):
        assert pearson_correlation(np.arange(10), np.arange(10) * 3 + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation(np.arange(10), -np.arange(10)) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        r = pearson_correlation(rng.normal(size=2_000), rng.normal(size=2_000))
        assert abs(r) < 0.1

    def test_length_mismatch_rejected(self):
        with pytest.raises(MeasurementError):
            pearson_correlation(np.arange(3), np.arange(4))

    def test_constant_rejected(self):
        with pytest.raises(MeasurementError):
            pearson_correlation(np.ones(5), np.arange(5))


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        x = np.arange(1, 20, dtype=np.float64)
        assert spearman_correlation(x, np.exp(x / 5)) == pytest.approx(1.0)

    def test_ties_averaged(self):
        a = np.asarray([1.0, 2.0, 2.0, 3.0])
        b = np.asarray([10.0, 20.0, 20.0, 30.0])
        assert spearman_correlation(a, b) == pytest.approx(1.0)


class TestAggregateSeries:
    def test_groups_of_factor(self):
        series = make_series([1.0, 3.0, 5.0, 7.0, 100.0])
        assert aggregate_series(series, 2).tolist() == [2.0, 6.0]

    def test_factor_validated(self):
        with pytest.raises(MeasurementError):
            aggregate_series(make_series([1.0]), 0)

    def test_too_short_rejected(self):
        with pytest.raises(MeasurementError):
            aggregate_series(make_series([1.0]), 5)


class TestGranularityConsistency:
    def test_paper_entropy_patterns_are_close(self, btc_engine):
        """§II-C: daily/weekly entropy trends are 'quite close'."""
        day = btc_engine.measure_calendar("entropy", "day")
        week = btc_engine.measure_calendar("entropy", "week")
        report = granularity_consistency(day, week, factor=7)
        assert report.pearson > 0.7
        assert report.n_points == 52

    def test_gini_also_correlated_despite_level_shift(self, btc_engine):
        day = btc_engine.measure_calendar("gini", "day")
        week = btc_engine.measure_calendar("gini", "week")
        report = granularity_consistency(day, week, factor=7)
        # Levels differ strongly (the paper's point) but trends correlate.
        assert report.pearson > 0.4


class TestFixedVsSlidingAgreement:
    def test_even_sliding_windows_equal_fixed_partition(self, btc_engine):
        """With M = N/2, sliding windows 0, 2, 4, ... ARE the fixed count
        windows, so the values must agree exactly."""
        agreement = fixed_vs_sliding_agreement(btc_engine, "entropy", 144)
        assert agreement.max_even_window_gap == pytest.approx(0.0, abs=1e-12)

    def test_full_series_highly_correlated(self, btc_engine):
        # Odd-indexed sliding windows carry their own sampling noise, so
        # the interpolated correlation is high but not 1.
        agreement = fixed_vs_sliding_agreement(btc_engine, "gini", 144)
        assert agreement.pearson > 0.75
        assert agreement.mean_fixed == pytest.approx(agreement.mean_sliding, abs=0.02)
