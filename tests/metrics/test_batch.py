"""Tests for the batched metric layer (DistributionBatch / compute_batch)."""

import numpy as np
import pytest

import repro.metrics  # noqa: F401  - installs the standard kernels
from repro.errors import MetricError
from repro.metrics.base import (
    DistributionBatch,
    FunctionMetric,
    available_metrics,
    compute_batch,
    get_metric,
    has_batch_kernel,
    register_batch_kernel,
)


def random_rows(rng, n_rows=24, width=17):
    matrix = rng.uniform(0.0, 5.0, size=(n_rows, width))
    matrix[rng.uniform(size=matrix.shape) < 0.4] = 0.0
    matrix[:, 0] = rng.uniform(0.5, 2.0, size=n_rows)  # keep rows non-empty
    return matrix


class TestDistributionBatch:
    def test_counts_totals_and_sort_are_consistent(self):
        rng = np.random.default_rng(0)
        matrix = random_rows(rng)
        batch = DistributionBatch(matrix)
        assert batch.n_windows == matrix.shape[0]
        np.testing.assert_allclose(batch.totals, matrix.sum(axis=1))
        assert np.array_equal(batch.counts, (matrix > 0).sum(axis=1))
        assert np.array_equal(batch.sorted_ascending, np.sort(matrix, axis=1))

    def test_row_values_drops_zeros_in_entity_order(self):
        batch = DistributionBatch(np.array([[0.0, 3.0, 0.0, 1.0]]))
        assert batch.row_values(0).tolist() == [3.0, 1.0]

    def test_from_distributions_pads_ragged_rows(self):
        batch = DistributionBatch.from_distributions([[1.0, 2.0], [5.0], [3.0, 1.0, 2.0]])
        assert batch.matrix.shape == (3, 3)
        assert batch.row_values(1).tolist() == [5.0]

    def test_from_dense_packs_sparse_rows(self):
        matrix = np.zeros((4, 40))
        matrix[0, 5] = 2.0
        matrix[1, [3, 30]] = [1.0, 4.0]
        matrix[2, 39] = 7.0
        matrix[3, [0, 1, 2]] = [1.0, 2.0, 3.0]
        packed = DistributionBatch.from_dense(matrix)
        assert packed.matrix.shape == (4, 3)
        assert packed.row_values(1).tolist() == [1.0, 4.0]
        # Every metric must see identical distributions.
        wide = DistributionBatch(matrix)
        for name in available_metrics():
            np.testing.assert_allclose(
                compute_batch(name, packed), compute_batch(name, wide), rtol=1e-12
            )

    def test_from_dense_keeps_dense_rows_unpacked(self):
        matrix = np.ones((3, 4))
        batch = DistributionBatch.from_dense(matrix)
        assert batch.matrix.shape == (3, 4)

    def test_validation_rejects_bad_input(self):
        with pytest.raises(MetricError):
            DistributionBatch(np.ones(3))  # 1-D
        with pytest.raises(MetricError):
            DistributionBatch(np.array([[1.0, -1.0]]))
        with pytest.raises(MetricError):
            DistributionBatch(np.array([[np.inf, 1.0]]))
        with pytest.raises(MetricError):
            DistributionBatch.from_dense(np.array([[1.0, -2.0]]))


class TestComputeBatch:
    def test_every_registered_metric_matches_scalar_loop(self):
        rng = np.random.default_rng(42)
        batch = DistributionBatch(random_rows(rng))
        for name in available_metrics():
            metric = get_metric(name)
            expected = [float(metric.compute(batch.row_values(i))) for i in range(len(batch))]
            np.testing.assert_allclose(
                compute_batch(name, batch), expected, rtol=1e-9, atol=1e-12, err_msg=name
            )

    def test_integer_weights_match_exactly(self):
        rng = np.random.default_rng(1)
        matrix = rng.integers(0, 7, size=(30, 13)).astype(np.float64)
        matrix[:, 0] += 1.0
        batch = DistributionBatch(matrix)
        for name in ("gini", "nakamoto", "nakamoto-33", "top4-share"):
            metric = get_metric(name)
            expected = np.asarray(
                [float(metric.compute(batch.row_values(i))) for i in range(len(batch))]
            )
            assert np.array_equal(compute_batch(name, batch), expected), name

    def test_single_entity_rows(self):
        batch = DistributionBatch(np.array([[42.0, 0.0]]))
        assert compute_batch("gini", batch)[0] == 0.0
        assert compute_batch("entropy", batch)[0] == 0.0
        assert compute_batch("normalized-entropy", batch)[0] == 1.0
        assert compute_batch("nakamoto", batch)[0] == 1.0
        assert compute_batch("hhi", batch)[0] == 1.0
        assert compute_batch("top4-share", batch)[0] == 1.0

    def test_accepts_raw_matrix_and_ragged_lists(self):
        values = compute_batch("gini", np.array([[1.0, 1.0], [1.0, 3.0]]))
        assert values[0] == 0.0 and values[1] > 0.0
        values = compute_batch("entropy", [[1.0, 1.0, 1.0, 1.0], [2.0]])
        np.testing.assert_allclose(values, [2.0, 0.0])

    def test_empty_batch_returns_empty(self):
        assert compute_batch("gini", np.zeros((0, 5))).shape == (0,)

    def test_empty_row_rejected(self):
        with pytest.raises(MetricError):
            compute_batch("gini", np.array([[1.0, 2.0], [0.0, 0.0]]))

    def test_unregistered_metric_falls_back_to_loop(self):
        metric = FunctionMetric("test-max-share", lambda v: float(v.max() / v.sum()))
        assert not has_batch_kernel(metric.name)
        rng = np.random.default_rng(9)
        batch = DistributionBatch(random_rows(rng, n_rows=6))
        expected = [float(metric.compute(batch.row_values(i))) for i in range(6)]
        np.testing.assert_allclose(compute_batch(metric, batch), expected)


class TestKernelRegistry:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(MetricError):
            register_batch_kernel("gini", lambda batch: batch.totals)

    def test_overwrite_allowed_when_requested(self):
        original = has_batch_kernel("gini")
        assert original
        from repro.metrics.batch import batch_gini

        register_batch_kernel("gini", batch_gini, overwrite=True)
        assert has_batch_kernel("gini")

    def test_empty_name_rejected(self):
        with pytest.raises(MetricError):
            register_batch_kernel("", lambda batch: batch.totals)
