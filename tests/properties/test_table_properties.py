"""Property-based tests for the table engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.table import Table, concat

keys = st.lists(
    st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=60
)
values = st.lists(
    st.integers(min_value=-1_000, max_value=1_000), min_size=1, max_size=60
)


@st.composite
def tables(draw):
    k = draw(keys)
    v = draw(st.lists(
        st.integers(min_value=-1_000, max_value=1_000),
        min_size=len(k), max_size=len(k),
    ))
    return Table({"k": k, "v": v})


class TestGroupByProperties:
    @given(tables())
    @settings(max_examples=60)
    def test_group_counts_sum_to_rows(self, table):
        out = table.group_by("k").aggregate(n=("v", "count"))
        assert sum(out["n"].tolist()) == table.num_rows

    @given(tables())
    @settings(max_examples=60)
    def test_group_sums_total(self, table):
        out = table.group_by("k").aggregate(s=("v", "sum"))
        assert sum(out["s"].tolist()) == sum(table["v"].tolist())

    @given(tables())
    @settings(max_examples=60)
    def test_groups_match_python_reference(self, table):
        out = table.group_by("k").aggregate(s=("v", "sum"))
        reference: dict[str, int] = {}
        for key, value in zip(table["k"].tolist(), table["v"].tolist()):
            reference[key] = reference.get(key, 0) + value
        computed = dict(zip(out["k"].tolist(), out["s"].tolist()))
        assert computed == reference


class TestSortProperties:
    @given(tables())
    @settings(max_examples=60)
    def test_sort_is_permutation(self, table):
        out = table.sort_by("v")
        assert sorted(out["v"].tolist()) == sorted(table["v"].tolist())
        assert out["v"].tolist() == sorted(table["v"].tolist())

    @given(tables())
    @settings(max_examples=60)
    def test_sort_desc_reverses_asc_keys(self, table):
        asc = table.sort_by("v")["v"].tolist()
        desc = table.sort_by("v", descending=True)["v"].tolist()
        assert desc == sorted(asc, reverse=True)

    @given(tables())
    @settings(max_examples=60)
    def test_multikey_sort_stable_within_groups(self, table):
        out = table.sort_by(["k", "v"])
        rows = out.to_rows()
        for a, b in zip(rows, rows[1:]):
            if a["k"] == b["k"]:
                assert a["v"] <= b["v"]


class TestFilterConcatProperties:
    @given(tables(), st.integers(min_value=-1_000, max_value=1_000))
    @settings(max_examples=60)
    def test_filter_partition(self, table, pivot):
        below = table.filter(table["v"] < pivot)
        at_or_above = table.filter(table["v"] >= pivot)
        assert below.num_rows + at_or_above.num_rows == table.num_rows

    @given(tables(), st.integers(min_value=0, max_value=60))
    @settings(max_examples=60)
    def test_head_concat_tail_roundtrip(self, table, split):
        split = min(split, table.num_rows)
        rebuilt = concat([table.head(split), table.slice(split, None)])
        assert rebuilt == table

    @given(tables())
    @settings(max_examples=60)
    def test_distinct_then_counts(self, table):
        assert table.distinct("k").num_rows == len(set(table["k"].tolist()))
