"""Tests for trend utilities."""

import numpy as np
import pytest

from repro.core.trend import detrend, linear_trend, rolling_mean, rolling_std
from repro.errors import MeasurementError
from tests.core.test_series import make_series


class TestRollingMean:
    def test_flat_series_unchanged(self):
        series = make_series([2.0] * 10)
        assert rolling_mean(series, 3).values.tolist() == [2.0] * 10

    def test_window_one_is_identity(self):
        series = make_series([1.0, 5.0, 2.0])
        assert rolling_mean(series, 1).values.tolist() == [1.0, 5.0, 2.0]

    def test_centered_average(self):
        series = make_series([0.0, 3.0, 6.0])
        out = rolling_mean(series, 3)
        assert out.values[1] == pytest.approx(3.0)

    def test_edges_use_partial_windows(self):
        series = make_series([0.0, 3.0, 6.0])
        out = rolling_mean(series, 3)
        assert out.values[0] == pytest.approx(1.5)  # mean of [0, 3]
        assert out.values[2] == pytest.approx(4.5)  # mean of [3, 6]

    def test_smooths_noise(self):
        rng = np.random.default_rng(0)
        series = make_series((np.sin(np.linspace(0, 6, 200)) + rng.normal(0, 0.5, 200)).tolist())
        smoothed = rolling_mean(series, 21)
        assert smoothed.std() < series.std()

    def test_desc_suffix(self):
        assert rolling_mean(make_series([1.0]), 3).window_desc.endswith(":rollmean3")

    def test_invalid_window(self):
        with pytest.raises(MeasurementError):
            rolling_mean(make_series([1.0]), 0)


class TestRollingStd:
    def test_flat_is_zero(self):
        out = rolling_std(make_series([5.0] * 10), 4)
        assert np.allclose(out.values, 0.0)

    def test_spike_raises_local_std(self):
        values = [0.0] * 20
        values[10] = 10.0
        out = rolling_std(make_series(values), 5)
        assert out.values[10] > out.values[0]

    def test_invalid_window(self):
        with pytest.raises(MeasurementError):
            rolling_std(make_series([1.0, 2.0]), 1)


class TestDetrend:
    def test_removes_linear_drift(self):
        drift = np.linspace(0, 10, 100)
        out = detrend(make_series(drift.tolist()), 11)
        # Interior residuals are ~0 (edges are biased by partial windows).
        assert np.abs(out.values[10:-10]).max() < 1e-9

    def test_preserves_local_spike(self):
        values = np.zeros(50)
        values[25] = 5.0
        out = detrend(make_series(values.tolist()), 11)
        assert out.values[25] > 3.0


class TestLinearTrend:
    def test_exact_line(self):
        slope, intercept = linear_trend(make_series([1.0, 3.0, 5.0, 7.0]))
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_flat(self):
        slope, _ = linear_trend(make_series([4.0] * 10))
        assert slope == pytest.approx(0.0, abs=1e-12)

    def test_too_short_rejected(self):
        with pytest.raises(MeasurementError):
            linear_trend(make_series([1.0]))

    def test_btc_gini_drifts_down_then_flat(self, btc_engine):
        """BTC daily Gini declines through Q1 (the singleton stream that
        inflates daily inequality dries up at day ~50) and then flattens."""
        daily = btc_engine.measure_calendar("gini", "day")
        early_slope, _ = linear_trend(daily.slice(0, 90))
        late_slope, _ = linear_trend(daily.slice(180, 365))
        assert early_slope < 0
        assert abs(late_slope) < abs(early_slope)
        assert daily.slice(0, 50).mean() > daily.slice(180, 365).mean()
