"""The measurement engine — the paper's methodology as a library.

:class:`MeasurementEngine` combines a chain (through an attribution
policy), a metric and a window family into a :class:`MeasurementSeries`;
:mod:`repro.core.anomaly` finds the "special or abnormal values" the paper
is concerned with; :mod:`repro.core.comparison` expresses the paper's
comparative claims (level vs stability, fixed vs sliding) as testable
functions.
"""

from repro.core.anomaly import AnomalyReport, iqr_anomalies, rolling_mad_anomalies, zscore_anomalies
from repro.core.changepoint import ChangePoint, ChangePointReport, cusum_changepoints
from repro.core.comparison import (
    compare_level,
    compare_stability,
    fixed_vs_sliding_gain,
    granularity_ordering,
)
from repro.core.engine import MeasurementEngine
from repro.core.rolling import RollingHistogram
from repro.core.series import MeasurementSeries
from repro.core.streaming import Alert, StreamingMonitor, ThresholdRule
from repro.core.summary import SeriesSummary, summarize
from repro.core.trend import detrend, linear_trend, rolling_mean, rolling_std

__all__ = [
    "Alert",
    "AnomalyReport",
    "ChangePoint",
    "StreamingMonitor",
    "ThresholdRule",
    "ChangePointReport",
    "MeasurementEngine",
    "RollingHistogram",
    "cusum_changepoints",
    "detrend",
    "linear_trend",
    "rolling_mean",
    "rolling_std",
    "MeasurementSeries",
    "SeriesSummary",
    "compare_level",
    "compare_stability",
    "fixed_vs_sliding_gain",
    "granularity_ordering",
    "iqr_anomalies",
    "rolling_mad_anomalies",
    "summarize",
    "zscore_anomalies",
]
