"""Tests for the event timeline."""

import pytest

from repro.analysis.events import Event, coincident_events, event_timeline


@pytest.fixture(scope="module")
def btc_events(btc_engine):
    return event_timeline(btc_engine)


class TestEventTimeline:
    def test_sorted_by_position(self, btc_events):
        positions = [event.position for event in btc_events]
        assert positions == sorted(positions)

    def test_day14_flagged_by_multiple_metrics(self, btc_events):
        day14 = [e for e in btc_events if e.label == "2019-01-14"]
        metrics = {e.metric for e in day14}
        assert {"gini", "entropy"} <= metrics

    def test_kinds_are_valid(self, btc_events):
        assert {e.kind for e in btc_events} <= {"outlier", "shift-up", "shift-down"}

    def test_chain_name_attached(self, btc_events):
        assert all(e.chain == "bitcoin" for e in btc_events)

    def test_custom_metric_set(self, btc_engine):
        events = event_timeline(btc_engine, metrics=("hhi",))
        assert all(e.metric == "hhi" for e in events)

    def test_str_rendering(self, btc_events):
        text = str(btc_events[0])
        assert "bitcoin/" in text

    def test_day14_is_the_only_three_metric_event(self, btc_events):
        """The paper's day-14 anomaly is extreme under all three metrics —
        and it is the *only* 2019 date with that property."""
        groups = coincident_events(btc_events, min_metrics=3)
        assert [group[0].label for group in groups] == ["2019-01-14"]

    def test_ethereum_has_no_three_metric_event(self, eth_engine):
        """'There is no abnormal value observed during the year' (§II-C2d)."""
        eth_events = event_timeline(eth_engine)
        assert coincident_events(eth_events, min_metrics=3) == []

    def test_early_btc_multi_coinbase_days_flagged(self, btc_events):
        groups = coincident_events(btc_events, min_metrics=2)
        labels = {group[0].label for group in groups}
        # The injected early-2019 multi-coinbase events surface as
        # multi-metric anomalies.
        assert len(labels & {"2019-01-05", "2019-01-23", "2019-01-31"}) >= 2


class TestCoincidentEvents:
    def test_day14_is_coincident(self, btc_events):
        groups = coincident_events(btc_events, min_metrics=2)
        labels = {group[0].label for group in groups}
        assert "2019-01-14" in labels

    def test_min_metrics_filters(self):
        events = [
            Event("c", "gini", "outlier", 5, "d5", 1.0),
            Event("c", "entropy", "outlier", 5, "d5", 1.0),
            Event("c", "gini", "outlier", 9, "d9", 1.0),
        ]
        groups = coincident_events(events, min_metrics=2)
        assert len(groups) == 1
        assert groups[0][0].position == 5

    def test_same_metric_twice_does_not_count(self):
        events = [
            Event("c", "gini", "outlier", 5, "d5", 1.0),
            Event("c", "gini", "shift-up", 5, "d5", 4.2),
        ]
        assert coincident_events(events, min_metrics=2) == []
