"""Trace exporters, loaders and schema validation.

Two on-disk formats are supported, chosen by file extension in
:func:`write_trace`:

``.jsonl`` — repro JSONL
    One JSON object per line.  The first line is a ``meta`` record; every
    other line is a ``span``, ``counter``, ``gauge`` or ``timing`` record.
    Stream-friendly and trivially greppable.

anything else — Chrome trace format
    A single JSON object with a ``traceEvents`` list of complete
    (``"ph": "X"``) events in microseconds, loadable directly in
    ``chrome://tracing`` / Perfetto.  Metrics ride along as counter
    (``"ph": "C"``) events and in ``otherData``.

Both formats round-trip through :func:`load_trace_file` (used by the
``repro trace`` summary subcommand) and are checked by
:func:`validate_trace_file` (used by tests and the CI tracing smoke job).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ObservabilityError
from repro.obs.tracer import SpanRecord, Tracer

#: Schema version stamped into both formats.
TRACE_FORMAT_VERSION = 1

#: Keys every JSONL span record must carry.
_SPAN_KEYS = {"type", "id", "parent", "name", "start", "dur"}

#: Keys every Chrome complete event must carry.
_CHROME_EVENT_KEYS = {"name", "ph", "ts", "pid", "tid"}


# -- JSONL -----------------------------------------------------------------------


def to_jsonl_records(tracer: Tracer) -> list[dict]:
    """The tracer's data as a list of JSONL-ready record dicts.

    Every span record carries the pid it was recorded in — the tracer's
    own pid for local spans, the worker's pid for spans adopted from pool
    workers — so multi-process traces stay attributable after export.
    """
    records: list[dict] = [
        {
            "type": "meta",
            "format": "repro-trace",
            "version": TRACE_FORMAT_VERSION,
            "n_spans": len(tracer.spans),
            "trace_id": tracer.trace_id,
            "pid": tracer.pid,
        }
    ]
    for span in tracer.spans:
        record = {
            "type": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "start": span.start,
            "dur": span.duration,
            "pid": span.pid if span.pid is not None else tracer.pid,
        }
        if span.tid is not None:
            record["tid"] = span.tid
        if span.attrs:
            record["attrs"] = span.attrs
        records.append(record)
    snapshot = tracer.metrics.snapshot()
    for name, value in snapshot["counters"].items():
        records.append({"type": "counter", "name": name, "value": value})
    for name, value in snapshot["gauges"].items():
        records.append({"type": "gauge", "name": name, "value": value})
    for name, stats in snapshot["timings"].items():
        records.append({"type": "timing", "name": name, **stats})
    return records


def write_jsonl(tracer: Tracer, path: str | Path) -> Path:
    """Write the tracer's data as JSONL; returns the path."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for record in to_jsonl_records(tracer):
            handle.write(json.dumps(record) + "\n")
    return path


# -- Chrome trace format -----------------------------------------------------------


def to_chrome_trace(tracer: Tracer) -> dict:
    """The tracer's data as a ``chrome://tracing`` JSON object.

    Spans keep their real process ids (worker-adopted spans carry the
    worker's pid), so ``chrome://tracing`` / Perfetto renders one lane per
    process and the pool fan-out is visible at a glance.  Process-name
    metadata events label the coordinator lane.
    """
    events: list[dict] = []
    own_pid = tracer.pid or 1
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": own_pid,
            "tid": 0,
            "args": {"name": "repro coordinator"},
        }
    )
    worker_pids = sorted(
        {s.pid for s in tracer.spans if s.pid is not None and s.pid != own_pid}
    )
    for pid in worker_pids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro worker {pid}"},
            }
        )
    for span in tracer.spans:
        event = {
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": span.pid if span.pid is not None else own_pid,
            "tid": span.tid if span.tid is not None else 1,
        }
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_span"] = span.parent_id
        event["args"] = args
        events.append(event)
    snapshot = tracer.metrics.snapshot()
    trace_end = max((s.end for s in tracer.spans), default=0.0) * 1e6
    for name, value in snapshot["counters"].items():
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": trace_end,
                "pid": own_pid,
                "tid": 1,
                "args": {name: value},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": "repro-trace",
            "version": TRACE_FORMAT_VERSION,
            "trace_id": tracer.trace_id,
            "metrics": snapshot,
        },
    }


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    """Write the tracer's data in Chrome trace format; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(tracer)), encoding="utf-8")
    return path


def write_trace(tracer: Tracer, path: str | Path) -> Path:
    """Write ``tracer`` to ``path``, picking the format by extension.

    ``*.jsonl`` gets the line-delimited format; everything else gets
    Chrome trace JSON.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        return write_jsonl(tracer, path)
    return write_chrome_trace(tracer, path)


# -- loading ------------------------------------------------------------------------


def load_trace_file(path: str | Path) -> tuple[list[SpanRecord], dict]:
    """Load a trace written by :func:`write_trace` in either format.

    Returns ``(spans, metrics)`` where ``metrics`` maps instrument kind to
    name/value entries (timings keep their full summary dicts).
    """
    path = Path(path)
    if not path.is_file():
        raise ObservabilityError(f"no trace file at {path}")
    text = path.read_text(encoding="utf-8")
    if not text.strip():
        raise ObservabilityError(f"trace file {path} is empty")
    if text.lstrip().startswith("{") and '"traceEvents"' in text:
        return _load_chrome(path, text)
    spans, metrics, _ = _load_jsonl(path, text, lenient=False)
    return spans, metrics


def load_trace_file_lenient(path: str | Path) -> tuple[list[SpanRecord], dict, int]:
    """Load a trace, skipping malformed records instead of raising.

    Built for summarizing traces from interrupted runs: a truncated final
    JSONL line (the process died mid-write) or an otherwise corrupt record
    is counted and skipped rather than aborting the whole summary.
    Returns ``(spans, metrics, n_skipped)``.  A Chrome-format file is one
    JSON document, so a corrupt one yields no records and counts as one
    skip.  Missing files still raise — there is nothing to salvage.
    """
    path = Path(path)
    if not path.is_file():
        raise ObservabilityError(f"no trace file at {path}")
    text = path.read_text(encoding="utf-8")
    if text.lstrip().startswith("{") and '"traceEvents"' in text:
        try:
            spans, metrics = _load_chrome(path, text)
        except ObservabilityError:
            return [], {"counters": {}, "gauges": {}, "timings": {}}, 1
        return spans, metrics, 0
    return _load_jsonl(path, text, lenient=True)


def _load_jsonl(
    path: Path, text: str, lenient: bool
) -> tuple[list[SpanRecord], dict, int]:
    spans: list[SpanRecord] = []
    metrics: dict = {"counters": {}, "gauges": {}, "timings": {}}
    skipped = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if lenient:
                skipped += 1
                continue
            raise ObservabilityError(f"{path}:{lineno}: bad JSON: {exc}") from exc
        kind = record.get("type")
        if kind == "span":
            missing = _SPAN_KEYS - record.keys()
            if missing:
                if lenient:
                    skipped += 1
                    continue
                raise ObservabilityError(
                    f"{path}:{lineno}: span record missing keys {sorted(missing)}"
                )
            spans.append(
                SpanRecord(
                    span_id=record["id"],
                    parent_id=record["parent"],
                    name=record["name"],
                    start=record["start"],
                    duration=record["dur"],
                    attrs=record.get("attrs", {}),
                    pid=record.get("pid"),
                    tid=record.get("tid"),
                )
            )
        elif kind in ("counter", "gauge"):
            if "name" not in record or "value" not in record:
                if lenient:
                    skipped += 1
                    continue
                raise ObservabilityError(
                    f"{path}:{lineno}: {kind} record missing name/value"
                )
            metrics[kind + "s"][record["name"]] = record["value"]
        elif kind == "timing":
            if "name" not in record:
                if lenient:
                    skipped += 1
                    continue
                raise ObservabilityError(f"{path}:{lineno}: timing record missing name")
            metrics["timings"][record["name"]] = {
                key: value for key, value in record.items() if key not in ("type", "name")
            }
        elif kind != "meta":
            if lenient:
                skipped += 1
                continue
            raise ObservabilityError(f"{path}:{lineno}: unknown record type {kind!r}")
    return spans, metrics, skipped


def _load_chrome(path: Path, text: str) -> tuple[list[SpanRecord], dict]:
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"{path}: bad JSON: {exc}") from exc
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ObservabilityError(f"{path}: 'traceEvents' must be a list")
    spans: list[SpanRecord] = []
    metrics: dict = {"counters": {}, "gauges": {}, "timings": {}}
    next_id = 0
    for event in events:
        if event.get("ph") == "C":
            name = event.get("name", "?")
            metrics["counters"][name] = (event.get("args") or {}).get(name, 0.0)
            continue
        if event.get("ph") != "X":
            continue
        next_id += 1
        args = dict(event.get("args", {}))
        span_id = args.pop("span_id", next_id)
        parent = args.pop("parent_span", None)
        spans.append(
            SpanRecord(
                span_id=span_id,
                parent_id=parent,
                name=event["name"],
                start=event["ts"] / 1e6,
                duration=event.get("dur", 0.0) / 1e6,
                attrs=args,
                pid=event.get("pid"),
                tid=event.get("tid"),
            )
        )
    other = document.get("otherData", {})
    if isinstance(other, dict) and isinstance(other.get("metrics"), dict):
        stored = other["metrics"]
        for kind in ("counters", "gauges", "timings"):
            if isinstance(stored.get(kind), dict):
                metrics[kind] = stored[kind]
    return spans, metrics


# -- validation ------------------------------------------------------------------------


def validate_trace_file(path: str | Path) -> dict:
    """Schema-check a trace file; returns a summary dict.

    Raises :class:`~repro.errors.ObservabilityError` on a missing file,
    malformed JSON, missing required keys, or structurally invalid spans
    (negative durations, dangling parent ids).
    """
    path = Path(path)
    if path.suffix != ".jsonl":
        _validate_chrome_events(path)
    spans, metrics = load_trace_file(path)
    ids = {span.span_id for span in spans}
    for span in spans:
        if span.duration < 0:
            raise ObservabilityError(
                f"{path}: span {span.name!r} has negative duration {span.duration}"
            )
        if span.parent_id is not None and span.parent_id not in ids:
            raise ObservabilityError(
                f"{path}: span {span.name!r} references unknown parent {span.parent_id}"
            )
    return {
        "path": str(path),
        "format": "jsonl" if path.suffix == ".jsonl" else "chrome",
        "n_spans": len(spans),
        "n_counters": len(metrics["counters"]),
        "n_gauges": len(metrics["gauges"]),
        "n_timings": len(metrics["timings"]),
    }


def _validate_chrome_events(path: Path) -> None:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ObservabilityError(f"cannot read trace file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"{path}: bad JSON: {exc}") from exc
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ObservabilityError(f"{path}: 'traceEvents' must be a list")
    for i, event in enumerate(events):
        missing = _CHROME_EVENT_KEYS - event.keys()
        if missing:
            raise ObservabilityError(
                f"{path}: traceEvents[{i}] missing keys {sorted(missing)}"
            )
        if event["ph"] == "X" and "dur" not in event:
            raise ObservabilityError(
                f"{path}: traceEvents[{i}] is a complete event without 'dur'"
            )
