"""Sliding-window generator (paper §III-A).

Windows of ``N`` blocks advanced by a step of ``M`` blocks.  Consecutive
windows share ``N - M`` blocks, which is what lets the measurement capture
cross-interval changes that fixed windows split across two intervals.  The
number of windows over ``S`` blocks is the paper's Eq. 5:

.. math::

    L = \\frac{S - N}{M} + 1

(integer division; a trailing partial window is not emitted).
"""

from __future__ import annotations

from typing import Iterator, Sequence, overload

import numpy as np

from repro.errors import WindowError
from repro.windows.base import BlockWindow


def sliding_window_count(n_blocks: int, size: int, step: int) -> int:
    """The paper's Eq. 5: number of sliding windows over ``n_blocks``.

    >>> sliding_window_count(n_blocks=52_560, size=144, step=72)
    729
    """
    if size <= 0 or step <= 0:
        raise WindowError("size and step must be positive")
    if n_blocks < size:
        return 0
    return (n_blocks - size) // step + 1


class SlidingBlockWindows:
    """Count-based sliding windows of ``size`` blocks stepping by ``step``.

    ``step`` defaults to ``size // 2``, the paper's choice (M = N/2), which
    doubles the number of measurement points relative to fixed windows.
    """

    def __init__(self, size: int, step: int | None = None) -> None:
        if size <= 0:
            raise WindowError(f"window size must be positive, got {size}")
        if step is None:
            step = max(size // 2, 1)
        if step <= 0:
            raise WindowError(f"step must be positive, got {step}")
        if step > size:
            raise WindowError(
                f"step ({step}) larger than window size ({size}) would skip blocks"
            )
        self.size = size
        self.step = step

    @property
    def overlap(self) -> int:
        """Blocks shared by consecutive windows (``N - M``)."""
        return self.size - self.step

    def expected_count(self, n_blocks: int) -> int:
        """Eq. 5 for this generator's parameters."""
        return sliding_window_count(n_blocks, self.size, self.step)

    def generate(self, n_blocks: int) -> "BlockWindowSequence":
        """All windows over a chain of ``n_blocks`` blocks, in order.

        Returns a lazy sequence: windows are materialized on access, so the
        large families (Ethereum's 4,320/2,160) don't allocate thousands of
        dataclass instances just to be iterated once.
        """
        if n_blocks < 0:
            raise WindowError(f"n_blocks must be >= 0, got {n_blocks}")
        return BlockWindowSequence(self.size, self.step, self.expected_count(n_blocks))

    def start_offsets(self, n_blocks: int) -> np.ndarray:
        """Window start positions as an ndarray (the fast path's input)."""
        if n_blocks < 0:
            raise WindowError(f"n_blocks must be >= 0, got {n_blocks}")
        count = self.expected_count(n_blocks)
        return np.arange(count, dtype=np.int64) * self.step

    def __repr__(self) -> str:
        return f"SlidingBlockWindows(size={self.size}, step={self.step})"


class BlockWindowSequence(Sequence):
    """Lazy, re-iterable sequence of equally-spaced :class:`BlockWindow`.

    Behaves like the list :meth:`SlidingBlockWindows.generate` used to
    return (``len``, indexing, slicing, iteration) but builds each window
    object only when accessed.
    """

    __slots__ = ("size", "step", "count")

    def __init__(self, size: int, step: int, count: int) -> None:
        self.size = size
        self.step = step
        self.count = count

    def __len__(self) -> int:
        return self.count

    def _window(self, i: int) -> BlockWindow:
        start = i * self.step
        return BlockWindow(
            index=i,
            label=f"blocks[{start}:{start + self.size}]",
            start_block=start,
            stop_block=start + self.size,
        )

    @overload
    def __getitem__(self, index: int) -> BlockWindow: ...

    @overload
    def __getitem__(self, index: slice) -> list[BlockWindow]: ...

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._window(i) for i in range(*index.indices(self.count))]
        i = index + self.count if index < 0 else index
        if not 0 <= i < self.count:
            raise IndexError(f"window index {index} out of range for {self.count}")
        return self._window(i)

    def __iter__(self) -> Iterator[BlockWindow]:
        for i in range(self.count):
            yield self._window(i)

    def start_offsets(self) -> np.ndarray:
        """Window start positions as an int64 ndarray."""
        return np.arange(self.count, dtype=np.int64) * self.step

    def __repr__(self) -> str:
        return (
            f"BlockWindowSequence(size={self.size}, step={self.step}, "
            f"count={self.count})"
        )
