"""Opt-in resource profiling attached to spans.

While profiling is enabled, **every** span recorded by the process-wide
tracer gains resource attributes next to its wall time:

``cpu``
    CPU seconds (user + system, via :func:`time.process_time`) spent
    inside the span.
``rss_kb``
    Resident set size at span exit, in KiB (current RSS from
    ``/proc/self/statm`` where available, else the peak from
    ``resource.getrusage``; 0.0 when neither source exists).
``alloc_kb`` / ``alloc_peak_kb``
    Net Python allocation delta and in-span peak, in KiB, when
    :mod:`tracemalloc` sampling was requested (it costs real time, so it
    is a second opt-in: ``enable_profiling(trace_malloc=True)``).

Profiling is **off by default** and deliberately cheap to leave off: the
tracer checks one attribute per span, and the :func:`profiled` decorator
is a plain function call while both tracing and profiling are disabled
(budgeted at <3% of the BTC sliding sweep by
``benchmarks/bench_perf_profile.py``).

Usage::

    from repro.obs import profile

    profile.enable_profiling()          # every span now carries cpu/rss
    with obs.span("engine.sweep"):      # ... including this one
        ...

    @profile.profiled("stage.rebuild")  # or wrap a function in a
    def rebuild():                      # profiled span of its own
        ...

Per-stage rollups over a finished trace come from
:func:`repro.obs.report.profile_rollup` / ``format_profile_rollup`` and
are printed by ``repro --profile <command>``.  The worker pool forwards
the profiling flag to its children, so worker shard spans carry the
worker's own cpu/rss/alloc numbers.
"""

from __future__ import annotations

import functools
import os
import time
from typing import Any, Callable

from repro.obs import tracer as _tracer_mod
from repro.obs.tracer import get_tracer

#: Module-level switch; read via :func:`profiling_enabled`.
_ENABLED = False
_TRACEMALLOC = False
#: Whether :func:`enable_profiling` itself started tracemalloc — if so,
#: :func:`disable_profiling` stops it again (tracemalloc slows *every*
#: allocation in the process, so it must not outlive the profiling run).
_TRACEMALLOC_STARTED_HERE = False

_PAGE_SIZE = 4096
try:  # pragma: no branch - resolved once at import
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover - non-POSIX
    pass


def rss_kb() -> float:
    """Current resident set size in KiB (best effort, 0.0 if unknown).

    Prefers ``/proc/self/statm`` (current RSS, Linux); falls back to
    ``resource.getrusage`` (peak RSS — documented as such) elsewhere.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE / 1024.0
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes; normalize heuristically.
        return usage / 1024.0 if usage > 1 << 30 else float(usage)
    except Exception:  # pragma: no cover - exotic platforms
        return 0.0


def profiling_enabled() -> bool:
    """Whether per-span resource sampling is currently on."""
    return _ENABLED


def enable_profiling(trace_malloc: bool = False) -> None:
    """Start attaching resource attributes to every recorded span.

    ``trace_malloc=True`` additionally starts :mod:`tracemalloc` (if it
    is not already running) and records per-span allocation deltas; this
    slows allocation-heavy code noticeably, which is why it is a second
    opt-in.
    """
    global _ENABLED, _TRACEMALLOC, _TRACEMALLOC_STARTED_HERE
    _ENABLED = True
    _TRACEMALLOC = False
    if trace_malloc:
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
            _TRACEMALLOC_STARTED_HERE = True
        _TRACEMALLOC = True
    get_tracer().set_profiler(_begin_sample, _end_sample)


def disable_profiling() -> None:
    """Stop resource sampling (tracemalloc is left as it was found).

    If :func:`enable_profiling` started tracemalloc, it is stopped here;
    a tracemalloc session that was already running stays running.
    """
    global _ENABLED, _TRACEMALLOC, _TRACEMALLOC_STARTED_HERE
    _ENABLED = False
    _TRACEMALLOC = False
    if _TRACEMALLOC_STARTED_HERE:
        import tracemalloc

        tracemalloc.stop()
        _TRACEMALLOC_STARTED_HERE = False
    get_tracer().set_profiler(None, None)


def _begin_sample() -> tuple:
    """Per-span entry sample: (cpu_seconds, alloc_bytes | None)."""
    alloc = None
    if _TRACEMALLOC:
        import tracemalloc

        alloc = tracemalloc.get_traced_memory()[0]
    return (time.process_time(), alloc)


def _end_sample(sample: tuple, attrs: dict) -> None:
    """Per-span exit: write resource deltas into the span's attrs."""
    cpu_start, alloc_start = sample
    attrs["cpu"] = round(time.process_time() - cpu_start, 9)
    attrs["rss_kb"] = round(rss_kb(), 1)
    if alloc_start is not None:
        import tracemalloc

        current, peak = tracemalloc.get_traced_memory()
        attrs["alloc_kb"] = round((current - alloc_start) / 1024.0, 3)
        attrs["alloc_peak_kb"] = round((peak - alloc_start) / 1024.0, 3)


def profiled(name: str | None = None) -> Callable:
    """Decorator: run the function inside a profiled span.

    While both tracing and profiling are off this is one ``if`` per call
    (the function runs undecorated); with tracing on it behaves exactly
    like :func:`repro.obs.traced`; with profiling on too, the span
    carries the resource attributes described in the module docstring.
    """

    def decorate(fn: Callable) -> Callable:
        label = name or f"{fn.__module__.rsplit('.', 1)[-1]}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            tracer = get_tracer()
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def profile_span(name: str, **attrs: Any):
    """Context-manager form of :func:`profiled` on the process-wide tracer."""
    return _tracer_mod.span(name, **attrs)
