"""Tests for Shannon entropy (paper Eqs. 2-3)."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics.entropy import (
    effective_producers_entropy,
    normalized_entropy,
    shannon_entropy,
)


class TestShannonEntropy:
    def test_uniform_is_log2_n(self):
        assert shannon_entropy([1, 1, 1, 1]) == pytest.approx(2.0)
        assert shannon_entropy([7, 7]) == pytest.approx(1.0)

    def test_single_entity_is_zero(self):
        assert shannon_entropy([42.0]) == 0.0

    def test_skew_reduces_entropy(self):
        assert shannon_entropy([97, 1, 1, 1]) < shannon_entropy([25, 25, 25, 25])

    def test_scale_invariance(self):
        values = [3, 1, 4, 1, 5]
        assert shannon_entropy(values) == pytest.approx(
            shannon_entropy([v * 1_000 for v in values])
        )

    def test_more_entities_can_raise_entropy(self):
        """The paper's day-14 anomaly: extra one-credit producers raise E."""
        pools = [20, 18, 15, 12, 10, 8, 7, 6]
        assert shannon_entropy(pools + [1] * 170) > shannon_entropy(pools) + 2.0

    def test_known_value(self):
        # p = (0.5, 0.25, 0.25) -> H = 1.5 bits.
        assert shannon_entropy([2, 1, 1]) == pytest.approx(1.5)

    def test_zeros_dropped(self):
        assert shannon_entropy([1, 1, 0, 0]) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            shannon_entropy([])


class TestNormalizedEntropy:
    def test_uniform_is_one(self):
        assert normalized_entropy([3, 3, 3]) == pytest.approx(1.0)

    def test_single_entity_is_one(self):
        assert normalized_entropy([5.0]) == 1.0

    def test_bounded(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            values = rng.integers(1, 50, size=rng.integers(2, 30))
            assert 0.0 < normalized_entropy(values) <= 1.0

    def test_skew_lowers_normalized(self):
        assert normalized_entropy([1000, 1, 1]) < 0.5


class TestEffectiveProducers:
    def test_uniform_equals_population(self):
        assert effective_producers_entropy([1, 1, 1, 1]) == pytest.approx(4.0)

    def test_skewed_below_population(self):
        assert effective_producers_entropy([100, 1, 1, 1]) < 4.0

    def test_single_is_one(self):
        assert effective_producers_entropy([9.0]) == pytest.approx(1.0)
