"""Deterministic random-number-generator plumbing.

Simulations in this library must be exactly reproducible from a single seed.
All randomness flows through :class:`numpy.random.Generator` instances
derived here; no module calls ``np.random`` global state.

Streams are derived *by name* so adding a new consumer of randomness does not
perturb the draws seen by existing consumers — a property the calibration
tests rely on.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_rng(seed: int, stream: str) -> np.random.Generator:
    """Return a generator for the named ``stream`` derived from ``seed``.

    The same ``(seed, stream)`` pair always yields an identical generator,
    and distinct stream names yield statistically independent generators.
    """
    digest = hashlib.sha256(f"{seed}:{stream}".encode()).digest()
    child_seed = int.from_bytes(digest[:8], "big")
    return np.random.default_rng(child_seed)


def spawn_rngs(seed: int, streams: list[str]) -> dict[str, np.random.Generator]:
    """Return a dict of independent generators, one per stream name."""
    return {stream: derive_rng(seed, stream) for stream in streams}
