"""Network-layer decentralization metrics.

Applies the paper's measurement philosophy to the topology: degree Gini
(inequality of connectivity), betweenness concentration (how much relay
traffic the top nodes carry), relay dominance (share of shortest paths
through the top-k nodes) and a network Nakamoto coefficient (minimum
nodes covering a majority of betweenness — the relay-censorship analogue
of Eq. 4).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.errors import MetricError
from repro.metrics.gini import gini_coefficient
from repro.metrics.nakamoto import nakamoto_coefficient
from repro.network.topology import P2PNetwork


def degree_gini(network: P2PNetwork) -> float:
    """Gini coefficient of node degrees (0 = regular graph)."""
    return gini_coefficient(network.degrees())


def _betweenness(network: P2PNetwork, sample: int | None) -> np.ndarray:
    k = None
    if sample is not None:
        if sample < 2:
            raise MetricError(f"sample must be >= 2, got {sample}")
        k = min(sample, network.n_nodes)
    centrality = nx.betweenness_centrality(
        network.graph, k=k, weight="latency", seed=7
    )
    return np.asarray(
        [centrality[node] for node in sorted(network.graph.nodes)], dtype=np.float64
    )


def betweenness_concentration(network: P2PNetwork, sample: int | None = 200) -> float:
    """Gini coefficient of (latency-weighted) betweenness centrality.

    ``sample`` bounds the source set for the centrality approximation;
    pass ``None`` for the exact computation (slow beyond ~2k nodes).
    """
    values = _betweenness(network, sample)
    positive = values[values > 0]
    if positive.size == 0:
        raise MetricError("no node carries any shortest path")
    return gini_coefficient(positive)


def relay_dominance(network: P2PNetwork, top_k: int = 20, sample: int | None = 200) -> float:
    """Fraction of total betweenness carried by the ``top_k`` relay nodes."""
    if top_k <= 0:
        raise MetricError(f"top_k must be positive, got {top_k}")
    values = _betweenness(network, sample)
    total = values.sum()
    if total <= 0:
        raise MetricError("no node carries any shortest path")
    top = np.sort(values)[::-1][:top_k]
    return min(float(top.sum() / total), 1.0)


def network_nakamoto(
    network: P2PNetwork, threshold: float = 0.51, sample: int | None = 200
) -> int:
    """Minimum number of nodes jointly carrying ``threshold`` of relay traffic.

    The network-layer analogue of the paper's Eq. 4: how few nodes must
    collude (or be compromised) to mediate a majority of block relay.
    """
    values = _betweenness(network, sample)
    positive = values[values > 0]
    if positive.size == 0:
        raise MetricError("no node carries any shortest path")
    return nakamoto_coefficient(positive, threshold=threshold)
