"""Tests for the BigQuery-facade client."""

import pytest

from repro.bigquery import BigQueryClient
from repro.data.store import ChainStore
from repro.errors import SqlPlanError


@pytest.fixture(scope="module")
def client() -> BigQueryClient:
    return BigQueryClient(seed=2019)


class TestCatalog:
    def test_datasets(self, client):
        assert client.list_datasets() == ("crypto_bitcoin", "crypto_ethereum")

    def test_tables(self, client):
        assert client.list_tables("crypto_bitcoin") == ("blocks", "credits")

    def test_unknown_dataset(self, client):
        with pytest.raises(SqlPlanError):
            client.list_tables("crypto_dogecoin")
        with pytest.raises(SqlPlanError):
            client.chain("crypto_dogecoin")


class TestQueries:
    def test_paper_dataset_extraction(self, client):
        """The paper's §II-A collection query, against the facade."""
        job = client.query(
            "SELECT COUNT(*) AS n, MIN(height) AS first, MAX(height) AS last "
            "FROM crypto_bitcoin.blocks"
        )
        row = job.result().row(0)
        assert row["n"] == 54_231
        assert row["first"] == 556_459
        assert row["last"] == 556_459 + 54_231 - 1

    def test_backtick_quoted_table(self, client):
        job = client.query("SELECT COUNT(*) AS n FROM `crypto_bitcoin.blocks`")
        assert job.result().row(0)["n"] == 54_231

    def test_alias_and_aggregation(self, client):
        job = client.query(
            "SELECT b.primary_producer AS miner, COUNT(*) AS n "
            "FROM crypto_bitcoin.blocks b GROUP BY 1 ORDER BY n DESC LIMIT 3"
        )
        rows = job.to_rows()
        assert len(rows) == 3
        assert rows[0]["n"] >= rows[1]["n"] >= rows[2]["n"]

    def test_credits_table_exposes_multi_producer_blocks(self, client):
        job = client.query(
            "SELECT COUNT(*) AS n FROM crypto_bitcoin.credits WHERE n_producers > 80"
        )
        # The two day-14 blocks contribute 85 + 96 credit rows.
        assert job.result().row(0)["n"] == 85 + 96

    def test_job_metadata(self, client):
        job = client.query("SELECT 1 AS one FROM crypto_bitcoin.blocks LIMIT 1")
        assert job.total_rows == 1
        assert job.elapsed >= 0.0
        next_job = client.query("SELECT 1 AS one FROM crypto_bitcoin.blocks LIMIT 1")
        assert next_job.job_id == job.job_id + 1

    def test_chain_cached_between_queries(self, client):
        chain_a = client.chain("crypto_bitcoin")
        chain_b = client.chain("crypto_bitcoin")
        assert chain_a is chain_b


class TestStoreIntegration:
    def test_persists_to_store(self, tmp_path):
        store = ChainStore(tmp_path)
        client = BigQueryClient(seed=7, store=store)
        client.query("SELECT COUNT(*) AS n FROM crypto_bitcoin.blocks")
        assert store.exists("crypto_bitcoin-7")
        # A fresh client reloads from the store instead of re-simulating.
        reloaded = BigQueryClient(seed=7, store=store)
        job = reloaded.query("SELECT COUNT(*) AS n FROM crypto_bitcoin.blocks")
        assert job.result().row(0)["n"] == 54_231
