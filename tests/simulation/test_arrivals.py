"""Tests for block-count allocation and timestamp generation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.arrivals import allocate_daily_counts, draw_timestamps_for_day
from repro.util.rng import derive_rng
from repro.util.timeutils import SECONDS_PER_DAY, day_start


class TestAllocateDailyCounts:
    def test_sums_exactly_to_total(self):
        rng = derive_rng(1, "t")
        rates = np.full(365, 144.0)
        counts = allocate_daily_counts(54_231, rates, rng)
        assert counts.sum() == 54_231
        assert counts.shape == (365,)

    def test_respects_rate_proportions(self):
        rng = derive_rng(2, "t")
        rates = np.asarray([1.0, 3.0])
        counts = allocate_daily_counts(100_000, rates, rng)
        assert counts[1] / counts.sum() == pytest.approx(0.75, abs=0.02)

    def test_zero_total(self):
        rng = derive_rng(3, "t")
        counts = allocate_daily_counts(0, np.asarray([1.0, 1.0]), rng)
        assert counts.tolist() == [0, 0]

    def test_negative_total_rejected(self):
        with pytest.raises(SimulationError):
            allocate_daily_counts(-1, np.asarray([1.0]), derive_rng(0, "t"))

    def test_nonpositive_rates_rejected(self):
        with pytest.raises(SimulationError):
            allocate_daily_counts(10, np.asarray([1.0, 0.0]), derive_rng(0, "t"))

    def test_2d_rates_rejected(self):
        with pytest.raises(SimulationError):
            allocate_daily_counts(10, np.ones((2, 2)), derive_rng(0, "t"))


class TestDrawTimestamps:
    def test_sorted_within_day_bounds(self):
        rng = derive_rng(4, "t")
        stamps = draw_timestamps_for_day(day=100, count=200, rng=rng)
        assert stamps.shape == (200,)
        assert np.all(np.diff(stamps) >= 0)
        assert stamps.min() >= day_start(100)
        assert stamps.max() < day_start(100) + SECONDS_PER_DAY

    def test_zero_count(self):
        stamps = draw_timestamps_for_day(day=0, count=0, rng=derive_rng(0, "t"))
        assert stamps.shape == (0,)

    def test_negative_count_rejected(self):
        with pytest.raises(SimulationError):
            draw_timestamps_for_day(day=0, count=-1, rng=derive_rng(0, "t"))

    def test_roughly_uniform(self):
        rng = derive_rng(5, "t")
        stamps = draw_timestamps_for_day(day=0, count=10_000, rng=rng)
        offsets = stamps - day_start(0)
        # First and second half of the day get comparable mass.
        assert 0.45 < (offsets < SECONDS_PER_DAY / 2).mean() < 0.55
