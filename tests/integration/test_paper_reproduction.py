"""Integration tests: the paper's findings, figure by figure.

These assert the *shapes* the paper reports — who wins, value ranges,
granularity orderings, anomaly visibility — on the calibrated simulated
datasets.  Absolute tolerances are deliberately generous (the substrate is
a simulator, not the authors' BigQuery extract); EXPERIMENTS.md records
the exact paper-vs-measured numbers.
"""

import numpy as np
import pytest

from repro.core.anomaly import iqr_anomalies
from repro.core.comparison import granularity_ordering


@pytest.fixture(scope="module")
def btc(btc_engine):
    return btc_engine


@pytest.fixture(scope="module")
def eth(eth_engine):
    return eth_engine


class TestFig1BtcGiniFixed:
    def test_granularity_ordering(self, btc):
        series = [btc.measure_calendar("gini", g) for g in ("day", "week", "month")]
        assert granularity_ordering(series)

    def test_monthly_highest_in_first_quarter(self, btc):
        monthly = btc.measure_calendar("gini", "month")
        assert monthly.slice(0, 3).max() > 0.80

    def test_daily_mostly_between_045_and_060(self, btc):
        daily = btc.measure_calendar("gini", "day")
        assert daily.fraction_in_range(0.45, 0.60) > 0.60

    def test_daily_extreme_lows_in_first_quarter(self, btc):
        daily = btc.measure_calendar("gini", "day")
        assert daily.slice(0, 90).min() < 0.40
        assert daily.slice(90, 365).min() > daily.slice(0, 90).min()


class TestFig2BtcEntropyFixed:
    def test_daily_band(self, btc):
        daily = btc.measure_calendar("entropy", "day")
        assert daily.fraction_in_range(3.5, 4.0) > 0.5

    def test_extreme_highs_exceed_5_5(self, btc):
        daily = btc.measure_calendar("entropy", "day")
        assert daily.max() > 5.5

    def test_higher_during_first_two_months(self, btc):
        daily = btc.measure_calendar("entropy", "day")
        assert daily.slice(0, 60).mean() > daily.slice(150, 250).mean()

    def test_granularities_close(self, btc):
        """Unlike Gini, entropy moves little across granularities."""
        means = [
            btc.measure_calendar("entropy", g).mean() for g in ("day", "week", "month")
        ]
        assert max(means) - min(means) < 0.5


class TestFig3BtcNakamotoFixed:
    def test_stable_at_4_mid_year(self, btc):
        daily = btc.measure_calendar("nakamoto", "day")
        mid = daily.slice(100, 260)
        values, counts = np.unique(mid.values, return_counts=True)
        assert values[counts.argmax()] == 4.0

    def test_mostly_4_to_5(self, btc):
        daily = btc.measure_calendar("nakamoto", "day")
        assert daily.fraction_in_range(4, 5) > 0.8

    def test_extremes_above_35_in_first_50_days(self, btc):
        daily = btc.measure_calendar("nakamoto", "day")
        assert daily.slice(0, 50).max() > 35
        assert daily.slice(50, 365).max() < 35


class TestFig4EthGiniFixed:
    def test_granularity_ordering(self, eth):
        series = [eth.measure_calendar("gini", g) for g in ("day", "week", "month")]
        assert granularity_ordering(series)

    def test_higher_than_bitcoin(self, btc, eth):
        for granularity in ("day", "week", "month"):
            assert (
                eth.measure_calendar("gini", granularity).mean()
                > btc.measure_calendar("gini", granularity).mean()
            )

    def test_more_stable_than_bitcoin(self, btc, eth):
        btc_daily = btc.measure_calendar("gini", "day")
        eth_daily = eth.measure_calendar("gini", "day")
        assert eth_daily.std() < btc_daily.std()


class TestFig5EthEntropyFixed:
    def test_band_33_to_35(self, eth):
        daily = eth.measure_calendar("entropy", "day")
        assert daily.fraction_in_range(3.3, 3.6) > 0.8

    def test_no_extreme_values(self, eth):
        """'There is no abnormal value observed during the year.'"""
        daily = eth.measure_calendar("entropy", "day")
        assert daily.max() - daily.min() < 0.6


class TestFig6EthNakamotoFixed:
    def test_fluctuates_between_2_and_3(self, eth):
        daily = eth.measure_calendar("nakamoto", "day")
        assert set(np.unique(daily.values)) <= {2.0, 3.0}
        assert daily.fraction_in_range(2, 3) == 1.0

    def test_both_values_occur(self, eth):
        daily = eth.measure_calendar("nakamoto", "day")
        assert {2.0, 3.0} <= set(np.unique(daily.values))


class TestFig7Distribution:
    def test_population_grows_top_share_stays(self, btc_chain):
        from repro.analysis.figures import figure_7
        from repro.core.engine import MeasurementEngine

        figure = figure_7(MeasurementEngine.from_chain(btc_chain))
        day, month = figure.distributions
        assert month.n_producers > day.n_producers
        assert abs(
            sum(s for _, s in day.top) - sum(s for _, s in month.top)
        ) < 0.10


class TestFig8SlidingMechanics:
    def test_point_ratio_near_two(self, btc, eth):
        for engine, size in ((btc, 144), (eth, 6000)):
            sliding = engine.measure_sliding("entropy", size)
            fixed_count = engine.credits.n_blocks // size
            assert len(sliding) / fixed_count == pytest.approx(2.0, abs=0.05)


class TestFig9BtcEntropySliding:
    def test_means_by_window_size(self, btc):
        """Paper: ~3.810 / 4.002 / 4.091 for N = 144 / 1008 / 4320."""
        means = [btc.measure_sliding("entropy", n).mean() for n in (144, 1008, 4320)]
        assert means[0] == pytest.approx(3.810, abs=0.25)
        assert means[1] == pytest.approx(4.002, abs=0.25)
        assert means[2] == pytest.approx(4.091, abs=0.25)
        assert means[0] < means[1] < means[2]

    def test_daily_band_and_extremes(self, btc):
        daily = btc.measure_sliding("entropy", 144)
        assert daily.fraction_in_range(3.5, 4.0) > 0.5
        assert daily.count_extremes(high=5.0) >= 2

    def test_sliding_magnifies_extremes(self, btc):
        fixed = btc.measure_calendar("entropy", "day")
        sliding = btc.measure_sliding("entropy", 144)
        assert sliding.count_extremes(high=5.0) >= fixed.count_extremes(high=5.0)


class TestFig10EthEntropySliding:
    def test_means_by_window_size(self, eth):
        """Paper: ~3.420 / 3.433 / 3.445."""
        means = [
            eth.measure_sliding("entropy", n).mean() for n in (6000, 42000, 180000)
        ]
        for mean, target in zip(means, (3.420, 3.433, 3.445)):
            assert mean == pytest.approx(target, abs=0.15)
        assert means[0] <= means[1] <= means[2]

    def test_stable_band(self, eth):
        daily = eth.measure_sliding("entropy", 6000)
        assert daily.fraction_in_range(3.3, 3.6) > 0.8


class TestFig11BtcGiniSliding:
    def test_means_by_window_size(self, btc):
        """Paper: ~0.523 / 0.667 / 0.760."""
        means = [btc.measure_sliding("gini", n).mean() for n in (144, 1008, 4320)]
        assert means[0] == pytest.approx(0.523, abs=0.06)
        assert means[1] == pytest.approx(0.667, abs=0.06)
        assert means[2] == pytest.approx(0.760, abs=0.06)
        assert means[0] < means[1] < means[2]


class TestFig12EthGiniSliding:
    def test_means_by_window_size(self, eth):
        """Paper: ~0.837 / 0.878 / 0.916."""
        means = [eth.measure_sliding("gini", n).mean() for n in (6000, 42000, 180000)]
        assert means[0] == pytest.approx(0.837, abs=0.05)
        assert means[1] == pytest.approx(0.878, abs=0.05)
        assert means[2] == pytest.approx(0.916, abs=0.05)

    def test_less_decentralized_than_bitcoin(self, btc, eth):
        assert (
            eth.measure_sliding("gini", 6000).mean()
            > btc.measure_sliding("gini", 144).mean()
        )


class TestFig13BtcNakamotoSliding:
    def test_mostly_between_4_and_5(self, btc):
        daily = btc.measure_sliding("nakamoto", 144)
        assert daily.fraction_in_range(4, 5) > 0.8

    def test_day60_consolidation_visible_in_sliding_not_fixed(self, btc):
        """The paper's flagship sliding-window result (N index ~120)."""
        sliding = btc.measure_sliding("nakamoto", 144)
        fixed = btc.measure_calendar("nakamoto", "day")
        # Sliding dips below 4 near index 120 (day ~60)...
        assert sliding.slice(115, 130).min() <= 3
        # ...while the surrounding fixed daily values stay at 4+.
        assert fixed.slice(55, 65).min() >= 4

    def test_sliding_extreme_count_doubles(self, btc):
        fixed = btc.measure_calendar("nakamoto", "day")
        sliding = btc.measure_sliding("nakamoto", 144)
        assert sliding.count_extremes(high=20) >= fixed.count_extremes(high=20)


class TestFig14EthNakamotoSliding:
    def test_majority_between_2_and_3(self, eth):
        daily = eth.measure_sliding("nakamoto", 6000)
        assert daily.fraction_in_range(2, 3) == 1.0

    def test_less_decentralized_than_bitcoin(self, btc, eth):
        assert (
            eth.measure_sliding("nakamoto", 6000).mean()
            < btc.measure_sliding("nakamoto", 144).mean()
        )


class TestDay14Anomaly:
    """Paper §II-C1d: Jan 14 has ~148 blocks but a huge producer set."""

    def test_day14_gini_is_extreme_low(self, btc):
        daily = btc.measure_calendar("gini", "day")
        day14 = daily.values[13]
        assert day14 == pytest.approx(0.34, abs=0.06)
        assert day14 < daily.quantile(0.02)

    def test_day14_entropy_is_extreme_high(self, btc):
        daily = btc.measure_calendar("entropy", "day")
        day14 = daily.values[13]
        assert day14 > 6.0
        assert day14 > daily.quantile(0.98)

    def test_day14_flagged_by_detectors(self, btc):
        daily = btc.measure_calendar("entropy", "day")
        report = iqr_anomalies(daily)
        assert 13 in report.positions


class TestHeadlineClaims:
    def test_bitcoin_more_decentralized_all_metrics_all_granularities(self, btc, eth):
        for granularity in ("day", "week", "month"):
            assert (
                btc.measure_calendar("gini", granularity).mean()
                < eth.measure_calendar("gini", granularity).mean()
            )
            assert (
                btc.measure_calendar("entropy", granularity).mean()
                > eth.measure_calendar("entropy", granularity).mean()
            )
            assert (
                btc.measure_calendar("nakamoto", granularity).mean()
                > eth.measure_calendar("nakamoto", granularity).mean()
            )

    def test_ethereum_more_stable_all_metrics(self, btc, eth):
        for metric in ("gini", "entropy", "nakamoto"):
            btc_cv = btc.measure_calendar(metric, "day").coefficient_of_variation()
            eth_cv = eth.measure_calendar(metric, "day").coefficient_of_variation()
            assert eth_cv < btc_cv

    def test_sliding_and_fixed_means_agree(self, btc):
        """Paper §III-B: sliding and fixed averages are 'quite close'."""
        fixed = btc.measure_calendar("entropy", "day").mean()
        sliding = btc.measure_sliding("entropy", 144).mean()
        assert fixed == pytest.approx(sliding, abs=0.1)
