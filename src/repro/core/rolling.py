"""Incremental trailing-window credit histogram.

The streaming monitor and any other online consumer of block feeds need
the same thing the sliding measurement needs offline: the per-entity
credit distribution of the trailing N blocks, maintained incrementally.
:class:`RollingHistogram` interns producer names into dense slots, keeps
per-entity weight totals *and* integer credit counts, and evicts the
oldest block in O(producers-per-block).  The counts make removal exact:
an entity leaves the window when its credit count reaches zero, not when
a float subtraction happens to land within an epsilon of zero — which
matters for fractional (1/k) weights.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.errors import MeasurementError


class RollingHistogram:
    """Fixed-capacity trailing-block entity histogram with O(k) pushes."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise MeasurementError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._slot_of: dict[str, int] = {}
        self._names: list[str] = []
        self._weights = np.zeros(16, dtype=np.float64)
        self._counts = np.zeros(16, dtype=np.int64)
        self._ring: deque[tuple[tuple[int, ...], float]] = deque()
        self._active = 0

    def _slot(self, name: str) -> int:
        slot = self._slot_of.get(name)
        if slot is None:
            slot = len(self._names)
            self._slot_of[name] = slot
            self._names.append(name)
            if slot >= self._weights.shape[0]:
                self._weights = np.concatenate(
                    (self._weights, np.zeros(self._weights.shape[0]))
                )
                self._counts = np.concatenate(
                    (self._counts, np.zeros(self._counts.shape[0], dtype=np.int64))
                )
        return slot

    def push(self, producers: Sequence[str], weight_each: float = 1.0) -> None:
        """Add one block's producers; evicts the oldest block when full."""
        if not producers:
            raise MeasurementError("a block needs at least one producer")
        slots = tuple(self._slot(name) for name in producers)
        for slot in slots:
            if self._counts[slot] == 0:
                self._active += 1
            self._counts[slot] += 1
            self._weights[slot] += weight_each
        self._ring.append((slots, weight_each))
        if len(self._ring) > self.capacity:
            old_slots, old_weight = self._ring.popleft()
            for slot in old_slots:
                self._counts[slot] -= 1
                if self._counts[slot] == 0:
                    self._weights[slot] = 0.0
                    self._active -= 1
                else:
                    self._weights[slot] -= old_weight

    @property
    def n_blocks(self) -> int:
        """Blocks currently inside the window."""
        return len(self._ring)

    @property
    def n_active(self) -> int:
        """Entities holding non-zero credit in the window."""
        return self._active

    def distribution(self) -> np.ndarray:
        """The window's per-entity credit totals (non-zero entries only)."""
        used = self._weights[: len(self._names)]
        return used[self._counts[: len(self._names)] > 0].copy()

    def distribution_with_entities(self) -> tuple[list[str], np.ndarray]:
        """Like :meth:`distribution`, with the matching entity names."""
        counts = self._counts[: len(self._names)]
        present = np.flatnonzero(counts > 0)
        names = [self._names[int(i)] for i in present]
        return names, self._weights[present].copy()
