"""Theil index (extension metric).

The Theil-T inequality index

.. math::

    T = \\frac{1}{n} \\sum_i \\frac{x_i}{\\mu} \\ln \\frac{x_i}{\\mu}

is 0 for perfect equality and grows (up to :math:`\\ln n`) as production
concentrates.  Unlike Gini it is additively decomposable, which makes it a
useful cross-check on the Gini trends.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import validate_distribution


def theil_index(values: np.ndarray | list[float]) -> float:
    """Theil-T index of a credit distribution, ``>= 0``.

    >>> theil_index([5, 5, 5])
    0.0
    >>> theil_index([1, 1, 1, 97]) > 1.0
    True
    """
    array = validate_distribution(values)
    mean = array.mean()
    ratio = array / mean
    return float((ratio * np.log(ratio)).mean())
