"""CSV and JSONL round-trips for tables.

CSV is typed via an optional schema; without one, column kinds are inferred
from the data (int, then float, then bool, falling back to str).  JSONL
preserves types natively.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.errors import TableError
from repro.table.column import Column
from repro.table.schema import Schema
from repro.table.table import Table


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` as UTF-8 CSV with a header row."""
    path = Path(path)
    columns = {name: table.column(name).to_list() for name in table.column_names}
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for i in range(table.num_rows):
            writer.writerow([columns[name][i] for name in table.column_names])


def read_csv(path: str | Path, schema: Schema | None = None) -> Table:
    """Read a CSV with header into a table.

    With a ``schema``, columns are parsed to the declared kinds (and the
    header must contain every schema column).  Without one, kinds are
    inferred per column.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise TableError(f"CSV file {path} is empty (no header row)") from None
        rows = list(reader)
    for row in rows:
        if len(row) != len(header):
            raise TableError(
                f"CSV row has {len(row)} fields, header has {len(header)}: {row!r}"
            )
    raw = {name: [row[i] for row in rows] for i, name in enumerate(header)}
    if schema is not None:
        missing = [name for name in schema.names if name not in raw]
        if missing:
            raise TableError(f"CSV file {path} is missing columns {missing}")
        data = {
            name: Column(_parse_typed(raw[name], kind), kind) for name, kind in schema
        }
        return Table(data)
    return Table({name: Column(_infer_parse(values)) for name, values in raw.items()})


def _parse_typed(values: list[str], kind: str) -> list[Any]:
    if kind == "str":
        return list(values)
    if kind == "int":
        return [int(v) for v in values]
    if kind == "float":
        return [float(v) for v in values]
    return [_parse_bool_text(v) for v in values]


def _infer_parse(values: list[str]) -> list[Any]:
    for parser in (_try_all_int, _try_all_float, _try_all_bool):
        parsed = parser(values)
        if parsed is not None:
            return parsed
    return list(values)


def _try_all_int(values: list[str]) -> list[int] | None:
    try:
        return [int(v) for v in values]
    except ValueError:
        return None


def _try_all_float(values: list[str]) -> list[float] | None:
    try:
        return [float(v) for v in values]
    except ValueError:
        return None


def _try_all_bool(values: list[str]) -> list[bool] | None:
    try:
        return [_parse_bool_text(v) for v in values]
    except ValueError:
        return None


def _parse_bool_text(value: str) -> bool:
    text = value.strip().lower()
    if text in ("true", "1"):
        return True
    if text in ("false", "0"):
        return False
    raise ValueError(f"not a boolean: {value!r}")


def write_jsonl(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` as one JSON object per line."""
    path = Path(path)
    columns = {name: table.column(name).to_list() for name in table.column_names}
    with path.open("w", encoding="utf-8") as handle:
        for i in range(table.num_rows):
            record = {name: columns[name][i] for name in table.column_names}
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")


def read_jsonl(path: str | Path) -> Table:
    """Read a JSONL file written by :func:`write_jsonl` back into a table."""
    path = Path(path)
    rows: list[dict[str, Any]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TableError(f"{path}:{line_no}: invalid JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise TableError(f"{path}:{line_no}: expected a JSON object")
            rows.append(record)
    return Table.from_rows(rows)
