"""Unit tests for the worker-pool plumbing (``repro.parallel.pool``)."""

import os

import pytest

from repro.errors import ParallelError
from repro.parallel import (
    AUTO,
    WorkerPool,
    in_worker,
    pool_status,
    resolve_workers,
    shard_ranges,
    worker_payload,
)


# -- module-level worker functions (must be picklable) -------------------------


def _echo(value):
    return value


def _payload_plus(offset):
    return worker_payload() + offset


def _boom(lo, hi):
    raise ValueError(f"shard [{lo}, {hi}) exploded")


class TestResolveWorkers:
    def test_auto_and_none_track_cpu_count(self):
        expected = max(1, os.cpu_count() or 1)
        assert resolve_workers(AUTO) == expected
        assert resolve_workers("auto") == expected
        assert resolve_workers(None) == expected

    @pytest.mark.parametrize("n", [1, 2, 3, 16])
    def test_explicit_int_is_literal(self, n):
        assert resolve_workers(n) == n

    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(ParallelError, match=">= 1"):
            resolve_workers(bad)

    @pytest.mark.parametrize("bad", [True, False, 2.0, "three", "Auto", [2]])
    def test_non_int_rejected(self, bad):
        with pytest.raises(ParallelError, match="positive int or 'auto'"):
            resolve_workers(bad)


class TestShardRanges:
    def test_examples(self):
        assert shard_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert shard_ranges(6, 2) == [(0, 3), (3, 6)]

    def test_more_shards_than_items_collapses(self):
        assert shard_ranges(2, 8) == [(0, 1), (1, 2)]

    def test_zero_items_is_empty(self):
        assert shard_ranges(0, 4) == []

    def test_invalid_shard_count(self):
        with pytest.raises(ParallelError, match="shards must be >= 1"):
            shard_ranges(10, 0)

    @pytest.mark.parametrize("n", [1, 2, 7, 100, 101])
    @pytest.mark.parametrize("k", [1, 2, 3, 8])
    def test_partition_properties(self, n, k):
        ranges = shard_ranges(n, k)
        # Contiguous, non-empty, covering [0, n) exactly, at most k shards.
        assert len(ranges) == min(n, k)
        assert ranges[0][0] == 0 and ranges[-1][1] == n
        for (lo, hi), (next_lo, _) in zip(ranges, ranges[1:]):
            assert hi == next_lo
        assert all(hi > lo for lo, hi in ranges)
        # Sizes differ by at most one, biggest first.
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)


class TestWorkerPool:
    def test_requires_at_least_two_workers(self):
        with pytest.raises(ParallelError, match=">= 2 workers"):
            WorkerPool(1)

    def test_map_shards_preserves_shard_order(self):
        with WorkerPool(2) as pool:
            results = pool.map_shards(_echo, [(i,) for i in range(8)])
        assert results == list(range(8))

    def test_payload_shared_with_workers(self):
        with WorkerPool(2, payload=40) as pool:
            results = pool.map_shards(_payload_plus, [(1,), (2,)])
        assert results == [41, 42]

    def test_worker_exception_wrapped_in_parallel_error(self):
        with WorkerPool(2) as pool:
            with pytest.raises(ParallelError, match=r"shard \[0, 5\) exploded"):
                pool.map_shards(_boom, [(0, 5), (5, 10)])

    def test_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool.close()
        pool.close()

    def test_payload_outside_worker_raises(self):
        assert not in_worker()
        with pytest.raises(ParallelError, match="inside a worker"):
            worker_payload()


class TestPoolStatus:
    def test_reports_host_and_lifetime_counters(self):
        before = pool_status()
        with WorkerPool(2, payload=None) as pool:
            pool.map_shards(_echo, [(1,), (2,), (3,)])
            during = pool_status()
        after = pool_status()

        assert after["cpu_count"] >= 1
        assert after["auto_workers"] == resolve_workers(AUTO)
        assert during["active_pools"] == before["active_pools"] + 1
        assert after["active_pools"] == before["active_pools"]
        lifetime = after["lifetime"]
        assert lifetime["pools_created"] == before["lifetime"]["pools_created"] + 1
        assert lifetime["tasks_submitted"] >= before["lifetime"]["tasks_submitted"] + 3
        assert lifetime["tasks_completed"] >= before["lifetime"]["tasks_completed"] + 3

    def test_last_pool_snapshot_shape(self):
        with WorkerPool(3) as pool:
            pool.map_shards(_echo, [(0,), (1,)])
        last = pool_status()["last_pool"]
        assert last["workers"] == 3
        assert last["start_method"] in ("fork", "spawn")
        assert last["tasks_submitted"] == 2
        assert last["tasks_completed"] == 2
        assert last["open"] is False
