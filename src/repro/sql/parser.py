"""Recursive-descent parser producing :mod:`repro.sql.astnodes` trees."""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.sql.astnodes import (
    Aggregate,
    Analyze,
    Between,
    Binary,
    Case,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Join,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    SubquerySource,
    TableRef,
    Unary,
    Union,
)
from repro.sql.functions import AGGREGATE_FUNCTIONS
from repro.sql.lexer import tokenize
from repro.sql.tokens import EOF, IDENT, KEYWORD, NUMBER, OPERATOR, PUNCT, STRING, Token

_COMPARISON_OPS = ("=", "!=", "<>", "<", "<=", ">", ">=")


def parse(sql: str) -> Select | Union | Analyze:
    """Parse one statement: SELECT, UNION ALL chain, or ANALYZE."""
    parser = _Parser(tokenize(sql))
    statement = parser.parse_statement()
    parser.expect_eof()
    return statement


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type != EOF:
            self._pos += 1
        return token

    def _accept(self, type_: str, value: object = None) -> Token | None:
        if self._peek().matches(type_, value):
            return self._advance()
        return None

    def _expect(self, type_: str, value: object = None) -> Token:
        token = self._peek()
        if not token.matches(type_, value):
            expected = value if value is not None else type_
            raise SqlSyntaxError(
                f"expected {expected}, found {token.value!r}", position=token.position
            )
        return self._advance()

    def expect_eof(self) -> None:
        token = self._peek()
        if token.type != EOF:
            raise SqlSyntaxError(
                f"unexpected trailing input: {token.value!r}", position=token.position
            )

    # -- statement -----------------------------------------------------------

    def parse_statement(self) -> Select | Union | Analyze:
        if self._accept(KEYWORD, "ANALYZE"):
            return self._parse_analyze()
        first = self.parse_select()
        if not self._peek().matches(KEYWORD, "UNION"):
            return first
        selects = [first]
        while self._accept(KEYWORD, "UNION"):
            self._expect(KEYWORD, "ALL")
            selects.append(self.parse_select())
        return Union(selects=tuple(selects))

    def _parse_analyze(self) -> Analyze:
        if self._peek().type != IDENT:
            return Analyze()
        name = self._advance().value
        # Dotted, dataset-qualified names, as in FROM.
        while self._peek().matches(PUNCT, ".") and self._peek(1).type == IDENT:
            self._advance()
            name = f"{name}.{self._advance().value}"
        return Analyze(table=name)

    def parse_select(self) -> Select:
        self._expect(KEYWORD, "SELECT")
        distinct = self._accept(KEYWORD, "DISTINCT") is not None
        items = self._parse_select_list()
        self._expect(KEYWORD, "FROM")
        source = self._parse_source()
        where = None
        if self._accept(KEYWORD, "WHERE"):
            where = self.parse_expr()
        group_by: tuple[Expr, ...] = ()
        if self._accept(KEYWORD, "GROUP"):
            self._expect(KEYWORD, "BY")
            group_by = tuple(self._parse_expr_list())
        having = None
        if self._accept(KEYWORD, "HAVING"):
            having = self.parse_expr()
        order_by: tuple[OrderItem, ...] = ()
        if self._accept(KEYWORD, "ORDER"):
            self._expect(KEYWORD, "BY")
            order_by = tuple(self._parse_order_list())
        limit = offset = None
        if self._accept(KEYWORD, "LIMIT"):
            limit = self._parse_nonnegative_int("LIMIT")
            if self._accept(KEYWORD, "OFFSET"):
                offset = self._parse_nonnegative_int("OFFSET")
        return Select(
            items=items,
            source=source,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_nonnegative_int(self, clause: str) -> int:
        token = self._expect(NUMBER)
        if not isinstance(token.value, int) or token.value < 0:
            raise SqlSyntaxError(
                f"{clause} requires a non-negative integer", position=token.position
            )
        return token.value

    def _parse_select_list(self) -> tuple[SelectItem, ...] | Star:
        if self._peek().matches(OPERATOR, "*"):
            self._advance()
            return Star()
        items = [self._parse_select_item()]
        while self._accept(PUNCT, ","):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias = None
        if self._accept(KEYWORD, "AS"):
            alias = self._expect(IDENT).value
        elif self._peek().type == IDENT:
            alias = self._advance().value
        return SelectItem(expr=expr, alias=alias)

    def _parse_source(self) -> TableRef | SubquerySource | Join:
        source: TableRef | SubquerySource | Join = self._parse_table_ref()
        while True:
            kind = None
            if self._accept(KEYWORD, "INNER"):
                kind = "inner"
                self._expect(KEYWORD, "JOIN")
            elif self._accept(KEYWORD, "LEFT"):
                kind = "left"
                self._expect(KEYWORD, "JOIN")
            elif self._accept(KEYWORD, "JOIN"):
                kind = "inner"
            else:
                break
            right = self._parse_table_ref()
            self._expect(KEYWORD, "ON")
            on_left = self._parse_column_ref("JOIN condition")
            self._expect(OPERATOR, "=")
            on_right = self._parse_column_ref("JOIN condition")
            source = Join(left=source, right=right, kind=kind, on_left=on_left, on_right=on_right)
        return source

    def _parse_table_ref(self) -> TableRef | SubquerySource:
        if self._peek().matches(PUNCT, "("):
            position = self._peek().position
            self._advance()
            subquery = self.parse_select()
            self._expect(PUNCT, ")")
            alias = None
            if self._accept(KEYWORD, "AS"):
                alias = self._expect(IDENT).value
            elif self._peek().type == IDENT:
                alias = self._advance().value
            if alias is None:
                raise SqlSyntaxError(
                    "a derived table requires an alias", position=position
                )
            return SubquerySource(select=subquery, alias=alias)
        name = self._expect(IDENT).value
        # Dotted, dataset-qualified names: ``crypto_bitcoin.blocks``.
        while self._peek().matches(PUNCT, ".") and self._peek(1).type == IDENT:
            self._advance()
            name = f"{name}.{self._advance().value}"
        alias = None
        if self._accept(KEYWORD, "AS"):
            alias = self._expect(IDENT).value
        elif self._peek().type == IDENT:
            alias = self._advance().value
        return TableRef(name=name, alias=alias)

    def _parse_column_ref(self, context: str) -> ColumnRef:
        expr = self._parse_primary()
        if not isinstance(expr, ColumnRef):
            raise SqlSyntaxError(f"{context} must be a column reference")
        return expr

    def _parse_expr_list(self) -> list[Expr]:
        exprs = [self.parse_expr()]
        while self._accept(PUNCT, ","):
            exprs.append(self.parse_expr())
        return exprs

    def _parse_order_list(self) -> list[OrderItem]:
        items = []
        while True:
            expr = self.parse_expr()
            descending = False
            if self._accept(KEYWORD, "DESC"):
                descending = True
            else:
                self._accept(KEYWORD, "ASC")
            items.append(OrderItem(expr=expr, descending=descending))
            if not self._accept(PUNCT, ","):
                return items

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._accept(KEYWORD, "OR"):
            left = Binary("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._accept(KEYWORD, "AND"):
            left = Binary("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self._accept(KEYWORD, "NOT"):
            return Unary("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        token = self._peek()
        if token.type == OPERATOR and token.value in _COMPARISON_OPS:
            op = self._advance().value
            if op == "<>":
                op = "!="
            return Binary(op, left, self._parse_additive())
        negated = False
        if token.matches(KEYWORD, "NOT") and self._peek(1).matches(KEYWORD, "BETWEEN"):
            self._advance()
            negated = True
            token = self._peek()
        if token.matches(KEYWORD, "NOT") and self._peek(1).matches(KEYWORD, "IN"):
            self._advance()
            negated = True
            token = self._peek()
        if token.matches(KEYWORD, "NOT") and self._peek(1).matches(KEYWORD, "LIKE"):
            self._advance()
            self._advance()
            return Unary("NOT", Binary("LIKE", left, self._parse_additive()))
        if self._accept(KEYWORD, "BETWEEN"):
            low = self._parse_additive()
            self._expect(KEYWORD, "AND")
            high = self._parse_additive()
            return Between(operand=left, low=low, high=high, negated=negated)
        if self._accept(KEYWORD, "IN"):
            self._expect(PUNCT, "(")
            items = [self.parse_expr()]
            while self._accept(PUNCT, ","):
                items.append(self.parse_expr())
            self._expect(PUNCT, ")")
            return InList(operand=left, items=tuple(items), negated=negated)
        if self._accept(KEYWORD, "LIKE"):
            return Binary("LIKE", left, self._parse_additive())
        if self._accept(KEYWORD, "IS"):
            is_negated = self._accept(KEYWORD, "NOT") is not None
            self._expect(KEYWORD, "NULL")
            return IsNull(operand=left, negated=is_negated)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.type == OPERATOR and token.value in ("+", "-"):
                op = self._advance().value
                left = Binary(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.type == OPERATOR and token.value in ("*", "/", "%"):
                op = self._advance().value
                left = Binary(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self._accept(OPERATOR, "-"):
            return Unary("-", self._parse_unary())
        if self._accept(OPERATOR, "+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.type == NUMBER or token.type == STRING:
            self._advance()
            return Literal(token.value)
        if token.matches(KEYWORD, "TRUE"):
            self._advance()
            return Literal(True)
        if token.matches(KEYWORD, "FALSE"):
            self._advance()
            return Literal(False)
        if token.matches(KEYWORD, "NULL"):
            self._advance()
            return Literal(None)
        if token.matches(KEYWORD, "CASE"):
            return self._parse_case()
        if token.matches(PUNCT, "("):
            self._advance()
            expr = self.parse_expr()
            self._expect(PUNCT, ")")
            return expr
        if token.type == IDENT:
            return self._parse_ident_expr()
        raise SqlSyntaxError(
            f"unexpected token {token.value!r} in expression", position=token.position
        )

    def _parse_case(self) -> Expr:
        self._expect(KEYWORD, "CASE")
        whens: list[tuple[Expr, Expr]] = []
        while self._accept(KEYWORD, "WHEN"):
            condition = self.parse_expr()
            self._expect(KEYWORD, "THEN")
            whens.append((condition, self.parse_expr()))
        if not whens:
            raise SqlSyntaxError("CASE requires at least one WHEN clause")
        default = None
        if self._accept(KEYWORD, "ELSE"):
            default = self.parse_expr()
        self._expect(KEYWORD, "END")
        return Case(whens=tuple(whens), default=default)

    def _parse_ident_expr(self) -> Expr:
        name_token = self._advance()
        name = name_token.value
        if self._peek().matches(PUNCT, "("):
            return self._parse_call(name, name_token.position)
        if self._accept(PUNCT, "."):
            column = self._expect(IDENT).value
            return ColumnRef(name=column, table=name)
        return ColumnRef(name=name)

    def _parse_call(self, name: str, position: int) -> Expr:
        self._expect(PUNCT, "(")
        upper = name.upper()
        if upper in AGGREGATE_FUNCTIONS:
            if self._accept(OPERATOR, "*"):
                self._expect(PUNCT, ")")
                if upper != "COUNT":
                    raise SqlSyntaxError(f"{upper}(*) is not valid", position=position)
                return Aggregate(func="COUNT", argument=None)
            distinct = self._accept(KEYWORD, "DISTINCT") is not None
            argument = self.parse_expr()
            self._expect(PUNCT, ")")
            return Aggregate(func=upper, argument=argument, distinct=distinct)
        args: list[Expr] = []
        if not self._peek().matches(PUNCT, ")"):
            args.append(self.parse_expr())
            while self._accept(PUNCT, ","):
                args.append(self.parse_expr())
        self._expect(PUNCT, ")")
        return FunctionCall(name=upper, args=tuple(args))
