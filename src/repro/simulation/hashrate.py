"""Per-day pool hashrate shares.

Pools declare start/end-of-year shares (:class:`~repro.chain.pools.PoolInfo`);
the schedule linearly interpolates them and overlays a persistent AR(1)
multiplicative jitter so that shares wander on a multi-day timescale (real
pool shares drift as farms come online and miners switch pools) instead of
flickering independently every day.
"""

from __future__ import annotations

import numpy as np

from repro.chain.pools import PoolRegistry
from repro.errors import SimulationError
from repro.util.rng import derive_rng
from repro.util.timeutils import DAYS_IN_2019


class HashrateSchedule:
    """Daily (unnormalized) hashrate shares for a pool registry."""

    def __init__(
        self,
        registry: PoolRegistry,
        seed: int,
        jitter_sigma: float = 0.10,
        jitter_phi: float = 0.92,
        n_days: int = DAYS_IN_2019,
    ) -> None:
        if not 0.0 <= jitter_phi < 1.0:
            raise SimulationError(f"jitter_phi must be in [0, 1), got {jitter_phi}")
        if jitter_sigma < 0:
            raise SimulationError(f"jitter_sigma must be >= 0, got {jitter_sigma}")
        self.registry = registry
        self.n_days = n_days
        pools = registry.pools
        if not pools:
            raise SimulationError("hashrate schedule needs at least one pool")
        base = np.empty((n_days, len(pools)), dtype=np.float64)
        for j, pool in enumerate(pools):
            base[:, j] = [pool.share_on_day(day, n_days) for day in range(n_days)]
        noise = self._ar1_noise(
            derive_rng(seed, "hashrate/jitter"), n_days, len(pools), jitter_sigma, jitter_phi
        )
        self._shares = base * np.exp(noise)

    @staticmethod
    def _ar1_noise(
        rng: np.random.Generator, n_days: int, n_pools: int, sigma: float, phi: float
    ) -> np.ndarray:
        """AR(1) log-noise with stationary standard deviation ``sigma``."""
        if sigma == 0.0:
            return np.zeros((n_days, n_pools))
        innovation_sigma = sigma * np.sqrt(1.0 - phi * phi)
        noise = np.empty((n_days, n_pools), dtype=np.float64)
        noise[0] = rng.normal(0.0, sigma, size=n_pools)
        shocks = rng.normal(0.0, innovation_sigma, size=(n_days - 1, n_pools))
        for day in range(1, n_days):
            noise[day] = phi * noise[day - 1] + shocks[day - 1]
        return noise

    @property
    def n_pools(self) -> int:
        """Number of pools in the schedule."""
        return self._shares.shape[1]

    def pool_shares(self, day: int) -> np.ndarray:
        """Unnormalized pool shares on 0-based ``day``."""
        if not 0 <= day < self.n_days:
            raise SimulationError(f"day must be in [0, {self.n_days}), got {day}")
        return self._shares[day].copy()

    def all_shares(self) -> np.ndarray:
        """The full ``(n_days, n_pools)`` share matrix (copy)."""
        return self._shares.copy()

    def scale_pool(self, pool_index: int, start_day: int, n_days: int, factor: float) -> None:
        """Multiply one pool's share by ``factor`` for a run of days.

        Used by :class:`~repro.simulation.anomalies.ShareSpike` to create
        the cross-interval consolidation events the sliding-window analysis
        is designed to catch.
        """
        if factor <= 0:
            raise SimulationError(f"factor must be positive, got {factor}")
        if not 0 <= pool_index < self.n_pools:
            raise SimulationError(f"pool_index {pool_index} out of range")
        stop = min(start_day + n_days, self.n_days)
        start = max(start_day, 0)
        if start >= stop:
            raise SimulationError(
                f"spike days [{start_day}, {start_day + n_days}) fall outside the year"
            )
        self._shares[start:stop, pool_index] *= factor
