"""Tests for table rendering and sparklines."""

import pytest

from repro.errors import ValidationError
from repro.table import Table
from repro.viz.tables import render_table, sparkline
from tests.core.test_series import make_series


class TestRenderTable:
    def test_basic_grid(self):
        text = render_table(Table({"m": ["a", "b"], "n": [1, 10]}))
        lines = text.splitlines()
        assert lines[0] == "m | n"
        assert lines[1] == "--+---"
        assert lines[2] == "a |  1"
        assert lines[3] == "b | 10"

    def test_numeric_right_aligned_strings_left(self):
        text = render_table(Table({"name": ["xy", "a"], "v": [100, 1]}))
        lines = text.splitlines()
        assert lines[2].startswith("xy")
        assert lines[3].endswith("  1")

    def test_float_formatting(self):
        text = render_table(Table({"v": [1.23456]}), float_format="{:.2f}")
        assert "1.23" in text
        assert "1.2346" not in text

    def test_truncation_marker(self):
        table = Table({"v": list(range(30))})
        text = render_table(table, max_rows=5)
        assert "(25 more rows)" in text
        assert text.count("\n") == 5 + 2  # 5 rows + header + rule

    def test_none_rendered_as_null(self):
        text = render_table(Table({"v": ["a", None]}))
        assert "NULL" in text

    def test_empty_table(self):
        assert render_table(Table()) == "(empty table)"

    def test_zero_row_table_keeps_header(self):
        text = render_table(Table({"x": []}))
        assert text.splitlines()[0].strip() == "x"

    def test_invalid_max_rows(self):
        with pytest.raises(ValidationError):
            render_table(Table({"x": [1]}), max_rows=0)


class TestSparkline:
    def test_shape(self):
        assert sparkline([1, 2, 3, 2, 1], width=5) == "▁▅█▅▁"

    def test_flat_series(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_downsamples_to_width(self):
        out = sparkline(list(range(1000)), width=20)
        assert len(out) == 20
        assert out[0] == "▁"
        assert out[-1] == "█"

    def test_accepts_measurement_series(self):
        out = sparkline(make_series([0.0, 1.0]), width=10)
        assert out == "▁█"

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            sparkline([])

    def test_invalid_width_rejected(self):
        with pytest.raises(ValidationError):
            sparkline([1.0], width=0)
