"""Tests for the partitioned chain store and cache."""

import json

import numpy as np
import pytest

from repro.data.cache import cached_chain
from repro.data.store import ChainStore, ChainStoreError
from repro.util.timeutils import YEAR_2019_START, month_index
from tests.conftest import make_tiny_chain


@pytest.fixture
def chain():
    # Blocks spanning January and February 2019 (two partitions), with
    # one multi-producer block.
    producers = [["a"], ["b"], ["a", "x", "y"], ["c"], ["a"], ["b"]]
    return make_tiny_chain(
        producers,
        start_ts=YEAR_2019_START + 20 * 86_400,  # Jan 21
        spacing=4 * 86_400,  # every 4 days -> crosses into February
    )


@pytest.fixture
def store(tmp_path):
    return ChainStore(tmp_path / "datasets")


class TestSaveLoadRoundtrip:
    def test_roundtrip_preserves_everything(self, store, chain):
        store.save("tiny", chain)
        loaded = store.load("tiny")
        assert loaded.n_blocks == chain.n_blocks
        assert loaded.n_credits == chain.n_credits
        assert np.array_equal(loaded.heights, chain.heights)
        assert np.array_equal(loaded.timestamps, chain.timestamps)
        assert np.array_equal(loaded.offsets, chain.offsets)
        assert np.array_equal(loaded.producer_ids, chain.producer_ids)
        assert loaded.producer_names == chain.producer_names
        assert loaded.spec == chain.spec

    def test_partitioned_by_month(self, store, chain):
        directory = store.save("tiny", chain)
        partitions = sorted(p.name for p in directory.glob("part-*.npz"))
        months = sorted(set(np.asarray(month_index(chain.timestamps)).tolist()))
        assert len(partitions) == len(months) == 2
        assert partitions[0] == "part-2019-01.npz"
        assert partitions[1] == "part-2019-02.npz"

    def test_multi_producer_block_survives(self, store, chain):
        store.save("tiny", chain)
        loaded = store.load("tiny")
        assert loaded.block(2).producers == ("a", "x", "y")


class TestCatalog:
    def test_names_and_exists(self, store, chain):
        assert store.names() == []
        store.save("one", chain)
        store.save("two", chain)
        assert store.names() == ["one", "two"]
        assert store.exists("one")
        assert not store.exists("three")

    def test_delete(self, store, chain):
        store.save("gone", chain)
        store.delete("gone")
        assert not store.exists("gone")
        store.delete("gone")  # idempotent

    def test_overwrite_flag(self, store, chain):
        store.save("dup", chain)
        with pytest.raises(ChainStoreError, match="already exists"):
            store.save("dup", chain)
        store.save("dup", chain, overwrite=True)

    def test_invalid_name_rejected(self, store, chain):
        with pytest.raises(ChainStoreError):
            store.save("a/b", chain)


class TestCorruptionDetection:
    def test_missing_chain(self, store):
        with pytest.raises(ChainStoreError, match="no stored chain"):
            store.load("nope")

    def test_corrupt_manifest(self, store, chain):
        directory = store.save("bad", chain)
        (directory / "manifest.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(ChainStoreError, match="corrupt manifest"):
            store.load("bad")

    def test_missing_partition(self, store, chain):
        directory = store.save("bad", chain)
        (directory / "part-2019-02.npz").unlink()
        with pytest.raises(ChainStoreError, match="missing partition"):
            store.load("bad")

    def test_block_count_mismatch(self, store, chain):
        directory = store.save("bad", chain)
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["n_blocks"] += 1
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ChainStoreError, match="blocks"):
            store.load("bad")

    def test_unsupported_version(self, store, chain):
        directory = store.save("bad", chain)
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["version"] = 99
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ChainStoreError, match="version"):
            store.load("bad")


class TestPartitionPruning:
    def test_load_single_month(self, store, chain):
        store.save("tiny", chain)
        january = store.load_months("tiny", [0])
        months = np.asarray(month_index(chain.timestamps))
        assert january.n_blocks == int((months == 0).sum())
        assert np.asarray(month_index(january.timestamps)).max() == 0

    def test_load_missing_month_rejected(self, store, chain):
        store.save("tiny", chain)
        with pytest.raises(ChainStoreError, match="not present"):
            store.load_months("tiny", [5])


class TestCachedChain:
    def test_builds_once(self, store, chain):
        calls = []

        def build():
            calls.append(1)
            return chain

        first = cached_chain(store, "cached", build)
        second = cached_chain(store, "cached", build)
        assert len(calls) == 1
        assert np.array_equal(first.heights, second.heights)

    def test_refresh_rebuilds(self, store, chain):
        calls = []

        def build():
            calls.append(1)
            return chain

        cached_chain(store, "cached", build)
        cached_chain(store, "cached", build, refresh=True)
        assert len(calls) == 2


class TestAtomicSaves:
    def test_no_staging_directory_survives_a_save(self, store, chain):
        store.save("tiny", chain)
        assert not list(store.root.glob("*.tmp"))

    def test_leftover_staging_directory_is_not_a_chain(self, store, chain):
        # Simulate a process killed mid-write: a staging dir with a
        # manifest already inside.  It must be invisible to the catalog
        # and swept by the next save of the same name.
        store.save("tiny", chain)
        staging = store.root / "tiny.tmp"
        staging.mkdir()
        (staging / "manifest.json").write_text("{}", encoding="utf-8")
        assert store.names() == ["tiny"]
        assert not store.exists("tiny.tmp")
        store.save("tiny", chain, overwrite=True)
        assert not staging.exists()

    def test_interrupted_save_leaves_the_old_data_intact(self, store, chain):
        store.save("tiny", chain)
        boom = RuntimeError("disk died mid-write")

        class ExplodingChain:
            spec = chain.spec
            n_blocks = chain.n_blocks
            timestamps = chain.timestamps

            def producer_counts(self):
                raise boom

        with pytest.raises(RuntimeError):
            store.save("tiny", ExplodingChain(), overwrite=True)
        assert not list(store.root.glob("*.tmp"))
        loaded = store.load("tiny")  # the old version is untouched
        assert np.array_equal(loaded.heights, chain.heights)

    def test_tmp_suffixed_names_rejected(self, store, chain):
        with pytest.raises(ChainStoreError, match="invalid chain name"):
            store.save("sneaky.tmp", chain)


class TestChecksums:
    def test_flipped_partition_byte_fails_its_checksum(self, store, chain):
        from repro.resilience.faults import corrupt_file_bytes

        directory = store.save("tiny", chain)
        corrupt_file_bytes(directory / "part-2019-01.npz")
        with pytest.raises(ChainStoreError, match="checksum"):
            store.load("tiny")

    def test_corrupt_producers_fails_its_checksum(self, store, chain):
        directory = store.save("tiny", chain)
        path = directory / "producers.json"
        path.write_text(path.read_text().replace("a", "z", 1), encoding="utf-8")
        with pytest.raises(ChainStoreError, match="checksum"):
            store.load("tiny")

    def test_legacy_manifest_without_checksums_still_loads(self, store, chain):
        directory = store.save("tiny", chain)
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest.pop("producers_sha256")
        for partition in manifest["partitions"]:
            partition.pop("sha256")
        (directory / "manifest.json").write_text(json.dumps(manifest))
        loaded = store.load("tiny")
        assert loaded.n_blocks == chain.n_blocks

    def test_verify_reports_problems_without_raising(self, store, chain):
        from repro.resilience.faults import corrupt_file_bytes

        directory = store.save("tiny", chain)
        assert store.verify("tiny") == []
        corrupt_file_bytes(directory / "part-2019-02.npz")
        (directory / "part-2019-01.npz").unlink()
        problems = store.verify("tiny")
        assert any("missing partition" in p for p in problems)
        assert any("checksum" in p for p in problems)
        assert store.verify("absent") == ["no stored chain named 'absent'"]


class TestCacheSelfHealing:
    def test_corrupt_entry_is_rebuilt_automatically(self, store, chain):
        from repro.resilience.faults import corrupt_file_bytes

        calls = []

        def build():
            calls.append(1)
            return chain

        directory = store.save("cached", chain)
        corrupt_file_bytes(directory / "part-2019-01.npz")
        healed = cached_chain(store, "cached", build)
        assert len(calls) == 1  # rebuilt exactly once
        assert np.array_equal(healed.heights, chain.heights)
        assert store.verify("cached") == []  # the store is whole again
        cached_chain(store, "cached", build)
        assert len(calls) == 1  # subsequent loads hit the healed entry

    def test_repair_false_surfaces_the_corruption(self, store, chain):
        from repro.resilience.faults import corrupt_file_bytes

        directory = store.save("cached", chain)
        corrupt_file_bytes(directory / "part-2019-01.npz")
        with pytest.raises(ChainStoreError):
            cached_chain(store, "cached", lambda: chain, repair=False)
