"""Tests for the SQL lexer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import tokenize
from repro.sql.tokens import EOF, IDENT, KEYWORD, NUMBER, OPERATOR, PUNCT, STRING


def kinds(sql: str) -> list[str]:
    return [t.type for t in tokenize(sql)]


def values(sql: str) -> list:
    return [t.value for t in tokenize(sql)[:-1]]


class TestBasics:
    def test_ends_with_eof(self):
        assert kinds("")[-1] == EOF

    def test_keywords_uppercased(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type == KEYWORD for t in tokens[:-1])

    def test_identifiers_keep_case(self):
        token = tokenize("MyTable")[0]
        assert token.type == IDENT
        assert token.value == "MyTable"

    def test_underscore_identifier(self):
        assert tokenize("block_height")[0].value == "block_height"

    def test_whitespace_and_newlines_skipped(self):
        assert values("a\n\t b") == ["a", "b"]

    def test_line_comment_skipped(self):
        assert values("a -- comment here\nb") == ["a", "b"]

    def test_comment_at_eof(self):
        assert values("a -- trailing") == ["a"]


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.type == NUMBER
        assert token.value == 42
        assert isinstance(token.value, int)

    def test_float(self):
        assert tokenize("0.51")[0].value == 0.51

    def test_leading_dot(self):
        assert tokenize(".5")[0].value == 0.5

    def test_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0

    def test_negative_exponent(self):
        assert tokenize("2.5e-2")[0].value == 0.025


class TestStrings:
    def test_simple(self):
        token = tokenize("'hello'")[0]
        assert token.type == STRING
        assert token.value == "hello"

    def test_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_unterminated_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_quoted_identifier(self):
        token = tokenize('"weird name"')[0]
        assert token.type == IDENT
        assert token.value == "weird name"

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('"oops')


class TestOperators:
    @pytest.mark.parametrize("op", ["<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%"])
    def test_each_operator(self, op):
        token = tokenize(op)[0]
        assert token.type == OPERATOR
        assert token.value == op

    def test_greedy_two_char(self):
        assert values("a<=b") == ["a", "<=", "b"]

    def test_punctuation(self):
        tokens = tokenize("(a, b.c)")
        assert [t.type for t in tokens[:-1]] == [PUNCT, IDENT, PUNCT, IDENT, PUNCT, IDENT, PUNCT]

    def test_unknown_character_raises_with_position(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            tokenize("a ; b")
        assert excinfo.value.position == 2
