"""Fig. 9 — Shannon entropy measured in Bitcoin using sliding windows.

Paper claims: means ≈ 3.810 / 4.002 / 4.091 for N = 144 / 1008 / 4320
(M = N/2); about twice as many points as fixed windows; more extreme
values (> 5.0) than the fixed-window series; abnormal changes magnified.
"""

import pytest

from _bench_util import report_series
from repro.analysis.figures import figure_9


def test_fig09_btc_entropy_sliding(benchmark, btc):
    figure = benchmark(figure_9, btc)
    report_series(figure.title, figure.series)

    means = {size: figure.series[f"N={size}"].mean() for size in (144, 1008, 4320)}
    assert means[144] == pytest.approx(3.810, abs=0.25)
    assert means[1008] == pytest.approx(4.002, abs=0.25)
    assert means[4320] == pytest.approx(4.091, abs=0.25)
    assert means[144] < means[1008] < means[4320]

    daily = figure.series["N=144"]
    assert len(daily) == pytest.approx(2 * 365, abs=40)  # ~doubled points
    assert daily.count_extremes(high=5.0) >= 2

    fixed_daily = btc.measure_calendar("entropy", "day")
    assert daily.mean() == pytest.approx(fixed_daily.mean(), abs=0.1)
    assert daily.count_extremes(high=5.0) >= fixed_daily.count_extremes(high=5.0)
