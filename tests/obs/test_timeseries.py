"""Tests for the in-process time-series store (:mod:`repro.obs.timeseries`).

Covers the raw ring (wrap order, window filters), the rollup levels
(bucket alignment, out-of-order folds, retention eviction), query level
selection, the registry history hook, and — as a property test — that
downsampled mean/count stay consistent with the raw points they
summarize, including at retention boundaries.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    Bucket,
    QuantileSketch,
    RollupLevel,
    Series,
    TimeSeriesStore,
    attach_history,
)


class TestQuantileSketch:
    def test_exact_below_capacity(self):
        sketch = QuantileSketch(capacity=16)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            sketch.add(v)
        assert sketch.quantile(0.0) == 1.0
        assert sketch.quantile(0.5) == 3.0
        assert sketch.quantile(1.0) == 5.0

    def test_deterministic_across_runs(self):
        def run():
            sketch = QuantileSketch(capacity=8)
            for v in range(1000):
                sketch.add(float(v))
            return [sketch.quantile(q) for q in (0.1, 0.5, 0.9)]

        assert run() == run()

    def test_reservoir_stays_representative(self):
        sketch = QuantileSketch(capacity=64)
        for v in range(10_000):
            sketch.add(float(v))
        assert sketch.seen == 10_000
        assert 3_000 <= sketch.quantile(0.5) <= 7_000

    def test_empty_and_invalid(self):
        assert QuantileSketch().quantile(0.5) == 0.0
        with pytest.raises(ValidationError):
            QuantileSketch(capacity=0)


class TestRollupLevel:
    def test_buckets_align_to_resolution(self):
        level = RollupLevel(60.0, 3600.0)
        level.record(61.0, 1.0)
        level.record(119.0, 3.0)
        level.record(120.0, 5.0)
        buckets = level.buckets()
        assert [b.start for b in buckets] == [60.0, 120.0]
        assert buckets[0].count == 2
        assert buckets[0].mean == 2.0
        assert buckets[1].minimum == buckets[1].maximum == 5.0

    def test_out_of_order_folds_into_retained_bucket(self):
        level = RollupLevel(60.0, 3600.0)
        level.record(60.0, 1.0)
        level.record(180.0, 1.0)
        level.record(70.0, 9.0)  # late, lands in the 60s bucket
        first = level.buckets()[0]
        assert first.count == 2
        assert first.maximum == 9.0

    def test_too_old_points_are_dropped(self):
        level = RollupLevel(60.0, 120.0)  # keeps 2 buckets
        for ts in (0.0, 60.0, 120.0):
            level.record(ts, 1.0)
        assert [b.start for b in level.buckets()] == [60.0, 120.0]
        level.record(0.0, 99.0)  # bucket already evicted: no-op
        assert all(b.maximum != 99.0 for b in level.buckets())

    def test_retention_evicts_oldest(self):
        level = RollupLevel(60.0, 180.0)  # 3 buckets max
        for i in range(10):
            level.record(i * 60.0, float(i))
        assert len(level) == 3
        assert [b.start for b in level.buckets()] == [420.0, 480.0, 540.0]

    def test_window_filter(self):
        level = RollupLevel(60.0, 3600.0)
        for i in range(5):
            level.record(i * 60.0, 1.0)
        got = [b.start for b in level.buckets(start=100.0, end=200.0)]
        assert got == [60.0, 120.0, 180.0]  # 60s bucket overlaps start=100

    def test_validation(self):
        with pytest.raises(ValidationError):
            RollupLevel(0.0, 60.0)
        with pytest.raises(ValidationError):
            RollupLevel(60.0, 30.0)


class TestSeriesRing:
    def test_wraps_and_preserves_arrival_order(self):
        series = Series("s", capacity=4, levels=())
        for i in range(6):
            series.record(float(i), float(i * 10))
        points = series.raw_points()
        assert [ts for ts, _ in points] == [2.0, 3.0, 4.0, 5.0]
        assert series.total_points == 6
        assert series.latest() == (5.0, 50.0)

    def test_window_filter_on_raw(self):
        series = Series("s", capacity=10, levels=())
        for i in range(5):
            series.record(float(i), 1.0)
        assert [ts for ts, _ in series.raw_points(start=1.0, end=3.0)] == [1.0, 2.0, 3.0]

    def test_empty_latest(self):
        assert Series("s").latest() is None


class TestTimeSeriesStore:
    def test_query_raw_by_default(self):
        store = TimeSeriesStore(clock=lambda: 0.0)
        store.record("m", 1.0, ts=10.0)
        store.record("m", 2.0, ts=20.0)
        result = store.query("m")
        assert result["step"] == 0.0
        assert [p["value"] for p in result["points"]] == [1.0, 2.0]

    def test_query_picks_coarsest_fitting_level(self):
        store = TimeSeriesStore(clock=lambda: 0.0)
        for i in range(20):
            store.record("m", float(i), ts=i * 60.0)
        raw = store.query("m", step=1.0)
        one_min = store.query("m", step=60.0)
        ten_min = store.query("m", step=1200.0)
        assert raw["step"] == 0.0
        assert one_min["step"] == 60.0
        assert ten_min["step"] == 600.0
        assert sum(p["count"] for p in one_min["points"]) == 20
        assert sum(p["count"] for p in ten_min["points"]) == 20

    def test_unknown_series_raises_keyerror(self):
        store = TimeSeriesStore()
        with pytest.raises(KeyError):
            store.query("nope")

    def test_tail_values_and_latest(self):
        store = TimeSeriesStore(clock=lambda: 0.0)
        for i in range(10):
            store.record("m", float(i), ts=float(i))
        assert store.tail_values("m", 3) == [7.0, 8.0, 9.0]
        assert store.tail_values("missing", 3) == []
        assert store.latest("m") == (9.0, 9.0)

    def test_series_names_and_stats(self):
        store = TimeSeriesStore(clock=lambda: 0.0)
        store.record("b", 1.0, ts=0.0)
        store.record("a", 1.0, ts=0.0)
        store.series("empty")  # created but never recorded: hidden
        assert store.series_names() == ["a", "b"]
        stats = store.stats()
        assert stats["series"] == 2
        assert stats["points_recorded"] == 2

    def test_clock_injection_variants(self):
        class ClockLike:
            def monotonic(self):
                return 42.0

        assert TimeSeriesStore(clock=ClockLike()).now() == 42.0
        assert TimeSeriesStore(clock=lambda: 7.0).now() == 7.0
        with pytest.raises(ValidationError):
            TimeSeriesStore(clock=object())


class TestRegistryHistoryHook:
    def test_instruments_record_history_once_attached(self):
        registry = MetricsRegistry()
        counter_before = registry.counter("pre.hits")
        store = attach_history(registry, clock=lambda: 0.0)
        counter_before.inc()
        registry.counter("post.hits").inc(2)
        registry.gauge("post.depth").set(3.5)
        registry.timing("post.lat").observe(0.25)
        assert store.latest("pre.hits")[1] == 1.0
        assert store.latest("post.hits")[1] == 2.0
        assert store.latest("post.depth")[1] == 3.5
        assert store.latest("post.lat")[1] == 0.25

    def test_counter_history_is_cumulative(self):
        registry = MetricsRegistry()
        store = attach_history(registry, clock=lambda: 0.0)
        c = registry.counter("c")
        c.inc()
        c.inc(2)
        assert [v for _, v in store.raw_points("c")] == [1.0, 3.0]

    def test_detach_restores_free_path(self):
        registry = MetricsRegistry()
        store = attach_history(registry)
        gauge = registry.gauge("g")
        assert gauge.history is not None
        registry.set_history(None)
        assert gauge.history is None
        assert registry.gauge("later").history is None
        gauge.set(1.0)  # no store attached: must not record
        assert store.latest("g") is None

    def test_reset_keeps_history_attached(self):
        registry = MetricsRegistry()
        store = attach_history(registry, clock=lambda: 0.0)
        registry.reset()
        registry.counter("after.reset").inc()
        assert store.latest("after.reset")[1] == 1.0

    def test_disabled_path_is_plain_none_check(self):
        registry = MetricsRegistry()
        assert registry.counter("free").history is None
        assert registry.history is None


@st.composite
def _point_batches(draw):
    """Monotone-ish timestamps over a few buckets with float values."""
    n = draw(st.integers(min_value=1, max_value=120))
    start = draw(st.floats(min_value=0.0, max_value=1e4))
    steps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=90.0),
            min_size=n, max_size=n,
        )
    )
    values = draw(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=n, max_size=n,
        )
    )
    ts = []
    t = start
    for step in steps:
        t += step
        ts.append(t)
    return list(zip(ts, values))


class TestRollupConsistencyProperties:
    RESOLUTION = 60.0

    @settings(max_examples=60, deadline=None)
    @given(points=_point_batches())
    def test_downsampled_mean_and_count_match_raw(self, points):
        retention = 10 * 86400.0  # long enough that nothing is evicted
        level = RollupLevel(self.RESOLUTION, retention)
        expected: dict[float, list[float]] = {}
        for ts, value in points:
            level.record(ts, value)
            expected.setdefault(ts - ts % self.RESOLUTION, []).append(value)
        buckets = {b.start: b for b in level.buckets()}
        assert set(buckets) == set(expected)
        for start, values in expected.items():
            bucket = buckets[start]
            assert bucket.count == len(values)
            assert math.isclose(
                bucket.mean, sum(values) / len(values),
                rel_tol=1e-9, abs_tol=1e-6,
            )
            assert bucket.minimum == min(values)
            assert bucket.maximum == max(values)

    @settings(max_examples=60, deadline=None)
    @given(points=_point_batches())
    def test_retention_boundary_keeps_newest_buckets_consistent(self, points):
        # A deliberately tiny retention: only the 3 newest buckets
        # survive, and each retained bucket must still agree with the
        # raw points that belong to it.
        retention = 3 * self.RESOLUTION
        level = RollupLevel(self.RESOLUTION, retention)
        expected: dict[float, list[float]] = {}
        for ts, value in points:
            level.record(ts, value)
            expected.setdefault(ts - ts % self.RESOLUTION, []).append(value)
        retained = level.buckets()
        assert len(retained) <= 3
        # The retained buckets are the newest ones, in order.
        starts = [b.start for b in retained]
        assert starts == sorted(starts)
        for bucket in retained:
            values = expected[bucket.start]
            # A late point whose bucket was already evicted is dropped,
            # so the bucket may undercount relative to the raw list only
            # if that bucket start predates the newest retained window —
            # retained buckets never overcount.
            assert bucket.count <= len(values)
            if bucket.count == len(values):
                assert math.isclose(
                    bucket.mean, sum(values) / len(values),
                    rel_tol=1e-9, abs_tol=1e-6,
                )

    @settings(max_examples=40, deadline=None)
    @given(points=_point_batches())
    def test_store_query_counts_match_raw_total(self, points):
        store = TimeSeriesStore(
            raw_capacity=4096, levels=((self.RESOLUTION, 10 * 86400.0),),
            clock=lambda: 0.0,
        )
        for ts, value in points:
            store.record("m", value, ts=ts)
        rolled = store.query("m", step=self.RESOLUTION)
        assert sum(p["count"] for p in rolled["points"]) == len(points)
        raw = store.query("m")
        assert len(raw["points"]) == min(len(points), 4096)


class TestBucketDict:
    def test_as_dict_shape(self):
        bucket = Bucket(120.0)
        bucket.add(1.0)
        bucket.add(3.0)
        d = bucket.as_dict()
        assert d["ts"] == 120.0
        assert d["count"] == 2
        assert d["mean"] == 2.0
        assert d["min"] == 1.0 and d["max"] == 3.0
        assert set(d) == {"ts", "count", "mean", "min", "max", "p50", "p95"}
