"""Extension: PoW vs DPoS decentralization under the paper's metrics.

The paper's related work ([11]) compares DPoS and PoW chains.  This
example measures a Steem-like 2019 DPoS chain (21 elected producers,
12-second slots, weekly elections) with the same three metrics and shows
the caveat the comparison surfaces: *within a window* DPoS looks extremely
decentralized — near-zero Gini, entropy = log2(21), Nakamoto = 11 — because
the metrics measure equality among active producers, not openness of the
producer set.  Only windows long enough to span elections (months) reveal
that the committee is a small, slowly-churning club.

Run with::

    python examples/dpos_vs_pow.py
"""

import numpy as np

from repro import MeasurementEngine, simulate_bitcoin_2019
from repro.simulation import simulate_dpos_2019


def main() -> None:
    chains = {
        "bitcoin (PoW)": MeasurementEngine.from_chain(simulate_bitcoin_2019()),
        "steem-like (DPoS)": MeasurementEngine.from_chain(simulate_dpos_2019()),
    }

    print(f"{'chain':<20s} {'metric':<10s} {'daily':>8s} {'monthly':>8s}")
    for name, engine in chains.items():
        for metric in ("gini", "entropy", "nakamoto"):
            daily = engine.measure_calendar(metric, "day").mean()
            monthly = engine.measure_calendar(metric, "month").mean()
            print(f"{name:<20s} {metric:<10s} {daily:8.3f} {monthly:8.3f}")

    dpos = chains["steem-like (DPoS)"]
    day_producers = dpos.measure_calendar("effective-producers", "day")
    print(
        f"\nDPoS effective producers per day: {day_producers.mean():.1f} "
        f"(committee size 21) — equality is perfect, but the set is closed."
    )
    print(
        "Takeaway: by the paper's per-window metrics the DPoS chain looks "
        "MORE decentralized than Bitcoin (entropy "
        f"{dpos.measure_calendar('entropy', 'day').mean():.2f} vs "
        f"{chains['bitcoin (PoW)'].measure_calendar('entropy', 'day').mean():.2f} "
        "bits; Nakamoto 11 vs ~4.6), yet its producer set is 21 elected "
        "entities. Decentralization metrics need the openness dimension too."
    )


if __name__ == "__main__":
    main()
