"""Tests for the SQL parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.astnodes import (
    Aggregate,
    Between,
    Binary,
    Case,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Join,
    Literal,
    Star,
    TableRef,
    Unary,
)
from repro.sql.parser import parse


class TestSelectList:
    def test_star(self):
        assert isinstance(parse("SELECT * FROM t").items, Star)

    def test_column_list(self):
        select = parse("SELECT a, b FROM t")
        assert [item.expr.name for item in select.items] == ["a", "b"]

    def test_alias_with_as(self):
        select = parse("SELECT a AS x FROM t")
        assert select.items[0].alias == "x"

    def test_alias_without_as(self):
        select = parse("SELECT a x FROM t")
        assert select.items[0].alias == "x"

    def test_qualified_column(self):
        select = parse("SELECT t.a FROM t")
        ref = select.items[0].expr
        assert ref == ColumnRef(name="a", table="t")

    def test_distinct_flag(self):
        assert parse("SELECT DISTINCT a FROM t").distinct


class TestExpressions:
    def expr(self, text: str):
        return parse(f"SELECT {text} FROM t").items[0].expr

    def test_precedence_mul_over_add(self):
        expr = self.expr("a + b * c")
        assert isinstance(expr, Binary) and expr.op == "+"
        assert isinstance(expr.right, Binary) and expr.right.op == "*"

    def test_parentheses_override(self):
        expr = self.expr("(a + b) * c")
        assert expr.op == "*"

    def test_and_or_precedence(self):
        expr = self.expr("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = self.expr("NOT a = 1")
        assert isinstance(expr, Unary) and expr.op == "NOT"

    def test_unary_minus(self):
        expr = self.expr("-a")
        assert isinstance(expr, Unary) and expr.op == "-"

    def test_unary_plus_is_dropped(self):
        assert self.expr("+a") == ColumnRef(name="a")

    def test_between(self):
        expr = self.expr("a BETWEEN 1 AND 5")
        assert isinstance(expr, Between)
        assert not expr.negated

    def test_not_between(self):
        assert self.expr("a NOT BETWEEN 1 AND 5").negated

    def test_in_list(self):
        expr = self.expr("a IN (1, 2, 3)")
        assert isinstance(expr, InList)
        assert len(expr.items) == 3

    def test_not_in(self):
        assert self.expr("a NOT IN (1)").negated

    def test_is_null(self):
        expr = self.expr("a IS NULL")
        assert isinstance(expr, IsNull) and not expr.negated

    def test_is_not_null(self):
        assert self.expr("a IS NOT NULL").negated

    def test_like(self):
        expr = self.expr("a LIKE 'x%'")
        assert isinstance(expr, Binary) and expr.op == "LIKE"

    def test_neq_normalized(self):
        assert self.expr("a <> 1").op == "!="

    def test_literals(self):
        assert self.expr("TRUE") == Literal(True)
        assert self.expr("FALSE") == Literal(False)
        assert self.expr("NULL") == Literal(None)
        assert self.expr("'s'") == Literal("s")
        assert self.expr("3.5") == Literal(3.5)

    def test_case(self):
        expr = self.expr("CASE WHEN a > 1 THEN 'big' ELSE 'small' END")
        assert isinstance(expr, Case)
        assert len(expr.whens) == 1
        assert expr.default == Literal("small")

    def test_case_without_else(self):
        assert self.expr("CASE WHEN a = 1 THEN 1 END").default is None

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT CASE ELSE 1 END FROM t")


class TestAggregatesAndFunctions:
    def expr(self, text: str):
        return parse(f"SELECT {text} FROM t").items[0].expr

    def test_count_star(self):
        assert self.expr("COUNT(*)") == Aggregate(func="COUNT", argument=None)

    def test_count_distinct(self):
        expr = self.expr("COUNT(DISTINCT a)")
        assert expr.distinct and expr.func == "COUNT"

    def test_sum(self):
        expr = self.expr("SUM(a + 1)")
        assert isinstance(expr, Aggregate) and expr.func == "SUM"

    def test_sum_star_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT SUM(*) FROM t")

    def test_scalar_function(self):
        expr = self.expr("ROUND(a, 2)")
        assert isinstance(expr, FunctionCall)
        assert expr.name == "ROUND"
        assert len(expr.args) == 2

    def test_function_no_args(self):
        expr = self.expr("LENGTH('x')")
        assert len(expr.args) == 1


class TestClauses:
    def test_where(self):
        assert parse("SELECT a FROM t WHERE a > 1").where is not None

    def test_group_by_list(self):
        select = parse("SELECT a, b, COUNT(*) FROM t GROUP BY a, b")
        assert len(select.group_by) == 2

    def test_having(self):
        assert parse("SELECT a, COUNT(*) n FROM t GROUP BY a HAVING n > 1").having is not None

    def test_order_by_directions(self):
        select = parse("SELECT a, b FROM t ORDER BY a DESC, b ASC, a")
        assert [o.descending for o in select.order_by] == [True, False, False]

    def test_limit_offset(self):
        select = parse("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert select.limit == 10
        assert select.offset == 5

    def test_limit_requires_integer(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t LIMIT 1.5")


class TestFromClause:
    def test_table_alias(self):
        select = parse("SELECT a FROM blocks b")
        assert select.source == TableRef(name="blocks", alias="b")

    def test_inner_join(self):
        select = parse("SELECT a FROM t JOIN u ON t.k = u.k")
        assert isinstance(select.source, Join)
        assert select.source.kind == "inner"

    def test_left_join(self):
        select = parse("SELECT a FROM t LEFT JOIN u ON t.k = u.k")
        assert select.source.kind == "left"

    def test_chained_joins(self):
        select = parse("SELECT a FROM t JOIN u ON t.k = u.k JOIN v ON u.j = v.j")
        assert isinstance(select.source.left, Join)

    def test_join_condition_must_be_columns(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t JOIN u ON 1 = u.k")


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t extra ,")

    def test_missing_from(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a")

    def test_empty_input(self):
        with pytest.raises(SqlSyntaxError):
            parse("")

    def test_unclosed_paren(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT (a FROM t")
