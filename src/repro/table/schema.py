"""Ordered column-name → kind mapping for tables."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import SchemaError
from repro.table.column import KINDS


class Schema:
    """An ordered mapping of column names to column kinds.

    >>> Schema([("height", "int"), ("miner", "str")]).names
    ('height', 'miner')
    """

    __slots__ = ("_fields",)

    def __init__(self, fields: Iterable[tuple[str, str]]) -> None:
        resolved: list[tuple[str, str]] = []
        seen: set[str] = set()
        for name, kind in fields:
            if not isinstance(name, str) or not name:
                raise SchemaError(f"column names must be non-empty strings, got {name!r}")
            if name in seen:
                raise SchemaError(f"duplicate column name: {name!r}")
            if kind not in KINDS:
                raise SchemaError(f"unknown column kind {kind!r} for column {name!r}")
            seen.add(name)
            resolved.append((name, kind))
        self._fields = tuple(resolved)

    @property
    def names(self) -> tuple[str, ...]:
        """Column names, in table order."""
        return tuple(name for name, _ in self._fields)

    @property
    def kinds(self) -> tuple[str, ...]:
        """Column kinds, in table order."""
        return tuple(kind for _, kind in self._fields)

    def kind_of(self, name: str) -> str:
        """Return the kind of column ``name``; raise if absent."""
        for field_name, kind in self._fields:
            if field_name == name:
                return kind
        raise SchemaError(f"no such column: {name!r}")

    def __contains__(self, name: object) -> bool:
        return any(field_name == name for field_name, _ in self._fields)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __repr__(self) -> str:
        body = ", ".join(f"{name}: {kind}" for name, kind in self._fields)
        return f"Schema({body})"
